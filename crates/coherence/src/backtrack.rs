//! Exact VMC decision by memoized backtracking search.
//!
//! Worst-case exponential — necessarily so, since VMC is NP-complete
//! (Theorem 4.2) — but with two powerful admissible prunings:
//!
//! 1. **Greedy read absorption.** A pending read whose value matches the
//!    current memory value can always be scheduled immediately: doing so
//!    changes no state and only releases program-order successors, so any
//!    coherent schedule can be rewritten into one that schedules it now.
//! 2. **Memoization.** After greedy absorption, the search state is exactly
//!    `(frontier, current value)`; re-entering a visited state cannot
//!    succeed. For `k` processes this also bounds the state space
//!    polynomially — O(n^k · n) states — so this same procedure *is* the
//!    polynomial algorithm for the "constant processes" row of Figure 5.3
//!    (cf. Gibbons & Korach's O(k·n^k) bound).
//!
//! Dead-end detection: a pending read needing value `v ≠ current` with no
//! remaining writes of `v` can never be served; prune immediately.
//!
//! ## Memoization hot path
//!
//! The visited-state set is the single hottest structure of the search: it
//! is probed once per explored state. Two overhauls keep it cheap (see
//! [`SearchConfig::legacy_memo_keys`] for the ablation baseline):
//!
//! * **Fx hashing** ([`vermem_util::hash`]) instead of SipHash — one
//!   rotate/xor/multiply per word instead of a keyed cryptographic-ish
//!   permutation.
//! * **Packed frontier keys** — with ≤ 8 processes and ≤ 255 operations
//!   per process (every Figure 4/5 reduction and most practical traces),
//!   the whole frontier packs into one `u64` (one byte per process), so a
//!   visited probe allocates nothing. Larger instances fall back to an
//!   *interned* frontier: each distinct frontier is boxed once, given a
//!   dense `u32` id, and re-probes hash only `(id, value)`.

use crate::verdict::{Verdict, Violation, ViolationKind};
use crate::windows::{self, WindowOutcome, WindowTable};
use std::collections::HashSet;
use vermem_trace::{Addr, AddrOps, Op, OpRef, Schedule, Trace, Value};
use vermem_util::hash::{FxHashMap, FxHashSet};
use vermem_util::intern::SliceInterner;
use vermem_util::obs;

/// Which inference-driven prunings the exact search applies. All three
/// are *admissible*: they shrink the explored tree but provably never
/// change the verdict (soundness arguments in DESIGN.md §4b), so each is
/// independently switchable for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneConfig {
    /// Feasibility-interval propagation ([`crate::windows`]): a polynomial
    /// pre-pass that can fast-reject (emptied serving window / must-precede
    /// cycle / RMW pigeonhole), fast-accept (acyclic forced serving order
    /// that simulates coherent), and otherwise leaves per-op position
    /// windows that prune DFS branches scheduling an op outside them.
    pub windows: bool,
    /// Value-symmetry breaking: branch-time canonicalization of moves whose
    /// remaining program-order suffixes are identical (interchangeable
    /// processes) — only the lowest-numbered process branches.
    pub symmetry: bool,
    /// Conflict-driven nogood learning: refuted `(frontier, value)` states
    /// are recorded under a process-identity-erased canonical key, so the
    /// refutation also prunes every permuted twin state (a strict
    /// generalization of the exact-state memo table).
    pub nogoods: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig::all()
    }
}

impl PruneConfig {
    /// All three techniques enabled (the default).
    pub fn all() -> Self {
        PruneConfig {
            windows: true,
            symmetry: true,
            nogoods: true,
        }
    }

    /// Every technique disabled — the PR-2 baseline search.
    pub fn none() -> Self {
        PruneConfig {
            windows: false,
            symmetry: false,
            nogoods: false,
        }
    }

    /// Parse a CLI spec: `all`, `none`, or a comma-separated subset of
    /// `windows`, `symmetry`, `nogoods` (e.g. `windows,nogoods`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "all" => return Ok(Self::all()),
            "none" => return Ok(Self::none()),
            _ => {}
        }
        let mut cfg = Self::none();
        for part in spec.split(',') {
            match part.trim() {
                "windows" => cfg.windows = true,
                "symmetry" => cfg.symmetry = true,
                "nogoods" => cfg.nogoods = true,
                other => {
                    return Err(format!(
                        "unknown prune technique '{other}' (expected all, none, \
                         or a comma-separated subset of windows/symmetry/nogoods)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Canonical spec string (`all`, `none`, or the comma-joined subset).
    pub fn spec(&self) -> String {
        match (self.windows, self.symmetry, self.nogoods) {
            (true, true, true) => "all".into(),
            (false, false, false) => "none".into(),
            _ => {
                let mut parts = Vec::new();
                if self.windows {
                    parts.push("windows");
                }
                if self.symmetry {
                    parts.push("symmetry");
                }
                if self.nogoods {
                    parts.push("nogoods");
                }
                parts.join(",")
            }
        }
    }
}

/// Budget and ablation knobs for the exact search. The optimization
/// switches exist for the ablation benchmarks (`bench/benches/ablation.rs`)
/// and default to the fast configuration; flipping any of them changes
/// performance only, never answers.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Maximum distinct states to visit before giving up with
    /// [`Verdict::Unknown`]. `None` = unlimited.
    pub max_states: Option<u64>,
    /// Memoize visited `(frontier, value)` states (pruning 1 in the module
    /// docs; also what makes the constant-k case polynomial).
    pub memoize: bool,
    /// Greedily absorb pending reads that match the current value
    /// (pruning 2 in the module docs).
    pub greedy_absorption: bool,
    /// Try writes whose value a blocked read demands first.
    pub hot_move_ordering: bool,
    /// Use the pre-overhaul memo representation (SipHash set keyed by
    /// `(Vec<u32>, Value)`, one heap allocation per probe) instead of the
    /// packed/interned Fx representation. Ablation knob only.
    pub legacy_memo_keys: bool,
    /// Inference-driven pruning techniques (PR 4). Defaults to all on.
    pub prune: PruneConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_states: None,
            memoize: true,
            greedy_absorption: true,
            hot_move_ordering: true,
            legacy_memo_keys: false,
            prune: PruneConfig::all(),
        }
    }
}

/// Counters from a search run.
///
/// Plain always-on fields (not gated by observability): they are part of
/// the determinism contract — identical whether `vermem_util::obs` is
/// enabled or not, and summed field-wise by the parallel reducer
/// ([`SearchStats::absorb`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct (post-absorption) states visited.
    pub states: u64,
    /// Branching decisions explored.
    pub branches: u64,
    /// Memo-table probes that found the state already visited (the
    /// search subtree was pruned).
    pub memo_hits: u64,
    /// Memo-table probes that recorded a fresh state. `memo_misses`
    /// equals `states` when memoization is on; both stay 0 when it is
    /// off.
    pub memo_misses: u64,
    /// Branches skipped (or whole instances fast-rejected) by
    /// feasibility-interval propagation ([`PruneConfig::windows`]).
    pub window_prunes: u64,
    /// Branches skipped by value-symmetry canonicalization
    /// ([`PruneConfig::symmetry`]).
    pub symmetry_prunes: u64,
    /// States refuted by a learned nogood that was *not* an exact memo
    /// repeat ([`PruneConfig::nogoods`]).
    pub nogood_hits: u64,
    /// Nogoods recorded from refuted subtrees.
    pub nogoods_learned: u64,
}

impl SearchStats {
    /// Field-wise summation — the reduction used by the parallel
    /// engine when combining per-address runs.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.states += other.states;
        self.branches += other.branches;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.window_prunes += other.window_prunes;
        self.symmetry_prunes += other.symmetry_prunes;
        self.nogood_hits += other.nogood_hits;
        self.nogoods_learned += other.nogoods_learned;
    }

    /// Render as a `search` section of the unified run report (the one
    /// shared pretty-printer in [`vermem_util::obs::report`]).
    pub fn to_report(&self) -> vermem_util::obs::report::RunReportSection {
        vermem_util::obs::report::RunReportSection::new("search")
            .with("states", self.states)
            .with("branches", self.branches)
            .with("memo_hits", self.memo_hits)
            .with("memo_misses", self.memo_misses)
            .with("window_prunes", self.window_prunes)
            .with("symmetry_prunes", self.symmetry_prunes)
            .with("nogood_hits", self.nogood_hits)
            .with("nogoods_learned", self.nogoods_learned)
    }
}

/// Static prechecks shared by all solvers: values read but never written,
/// and unproducible final values. Returns a violation if one is certain.
///
/// Standalone signature kept for existing callers; it indexes the address
/// itself. Solvers that already hold an [`AddrOps`] (the dispatcher, the
/// parallel engine) call [`precheck_ops`] and skip the re-scan.
pub fn precheck(trace: &Trace, addr: Addr) -> Option<Violation> {
    precheck_ops(&AddrOps::of(trace, addr))
}

/// As [`precheck`], on a pre-built per-address index entry (no trace scan).
/// Reports the same first violation as `precheck`: [`AddrOps::iter`] yields
/// operations in exactly the filtered-`iter_ops` order.
pub fn precheck_ops(ops: &AddrOps) -> Option<Violation> {
    let initial = ops.initial();
    for (r, op) in ops.iter() {
        if let Some(v) = op.read_value() {
            if v != initial && ops.writes_of(v) == 0 {
                return Some(Violation {
                    addr: ops.addr(),
                    kind: ViolationKind::NoWriterForValue { read: r, value: v },
                });
            }
        }
    }
    if let Some(f) = ops.final_value() {
        let producible = if ops.write_counts().is_empty() {
            f == initial
        } else {
            ops.writes_of(f) > 0
        };
        if !producible {
            return Some(Violation {
                addr: ops.addr(),
                kind: ViolationKind::FinalValueUnwritable { value: f },
            });
        }
    }
    None
}

/// Decide coherence of the operations of `trace` at `addr` by exhaustive
/// memoized search. The returned witness schedule references `trace`
/// directly and always passes [`vermem_trace::check_coherent_schedule`].
pub fn solve_backtracking(trace: &Trace, addr: Addr, cfg: &SearchConfig) -> Verdict {
    solve_backtracking_with_stats(trace, addr, cfg).0
}

/// As [`solve_backtracking`], also returning search statistics.
pub fn solve_backtracking_with_stats(
    trace: &Trace,
    addr: Addr,
    cfg: &SearchConfig,
) -> (Verdict, SearchStats) {
    let (verdict, stats) = solve_backtracking_ops_with_stats(&AddrOps::of(trace, addr), cfg);
    if let Verdict::Coherent(witness) = &verdict {
        debug_assert!(
            vermem_trace::check_coherent_schedule(trace, addr, witness).is_ok(),
            "solver produced invalid witness"
        );
    }
    (verdict, stats)
}

/// As [`solve_backtracking`], on a pre-built per-address index entry.
pub fn solve_backtracking_ops(ops: &AddrOps, cfg: &SearchConfig) -> Verdict {
    solve_backtracking_ops_with_stats(ops, cfg).0
}

/// As [`solve_backtracking_with_stats`], on a pre-built per-address index
/// entry — the zero-rescan entry point used by the dispatcher and the
/// parallel engine.
pub fn solve_backtracking_ops_with_stats(
    ops: &AddrOps,
    cfg: &SearchConfig,
) -> (Verdict, SearchStats) {
    let mut stats = SearchStats::default();
    if let Some(v) = precheck_ops(ops) {
        return (Verdict::Incoherent(v), stats);
    }

    // Feasibility-interval propagation (PR 4, technique 1): a polynomial
    // pre-pass that can decide the instance outright, and otherwise leaves
    // per-op position windows for DFS branch pruning.
    let mut window_table: Option<WindowTable> = None;
    if cfg.prune.windows {
        match windows::analyze(ops) {
            WindowOutcome::Infeasible => {
                // Equivalent to exhausting the search without a witness:
                // report the same violation kind for first-violation parity
                // with the unpruned engine.
                stats.window_prunes = 1;
                if obs::enabled() {
                    obs::counter_add("search.window.prunes", stats.window_prunes);
                    obs::counter_add("search.window.fast_reject", 1);
                }
                return (
                    Verdict::Incoherent(Violation {
                        addr: ops.addr(),
                        kind: ViolationKind::SearchExhausted,
                    }),
                    stats,
                );
            }
            WindowOutcome::Schedule(s) => {
                if obs::enabled() {
                    obs::counter_add("search.window.fast_accept", 1);
                }
                return (Verdict::Coherent(Schedule::from_refs(s)), stats);
            }
            WindowOutcome::Table(t) => window_table = Some(t),
        }
    }
    solve_escalated_ops_with_stats(ops, cfg, window_table)
}

/// Exact-tier **escalation** entry point: run the memoized DFS with the
/// [`WindowTable`] the closure frontline ([`crate::closure`]) already
/// computed, instead of re-running the fixpoint analysis.
///
/// Contract: the caller must have run [`precheck_ops`] (the frontline
/// does), and `window` must be the table from that same analysis when
/// `cfg.prune.windows` is on (`None` disables window pruning in the DFS,
/// matching `prune.windows = false`). Under that contract the result —
/// verdict, witness, and [`SearchStats`] — is bit-identical to
/// [`solve_backtracking_ops_with_stats`], which itself now delegates here
/// after its inline pre-passes.
pub fn solve_escalated_ops_with_stats(
    ops: &AddrOps,
    cfg: &SearchConfig,
    window_table: Option<WindowTable>,
) -> (Verdict, SearchStats) {
    let mut stats = SearchStats::default();
    let per_proc = ops.per_proc();
    let total = ops.num_ops();
    let initial = ops.initial();
    let final_value = ops.final_value();

    let mut remaining_writes: FxHashMap<Value, u32> = ops
        .write_counts()
        .iter()
        .map(|(&v, &c)| (v, c as u32))
        .collect();

    // Hash-consed program-order suffix classes (computed only when a
    // technique that consumes them is on): two `(proc, index)` positions
    // share a class iff the op sequences from there to the end of their
    // histories are identical. Class at index 0 is the *full-history*
    // class used by nogood canonicalization.
    let suffix_class = if cfg.prune.symmetry || cfg.prune.nogoods {
        suffix_classes(per_proc)
    } else {
        Vec::new()
    };
    // Nogood learning only pays (and is only distinct from the memo table)
    // when at least two processes have identical full histories.
    let has_twins = cfg.prune.nogoods && {
        let mut roots: Vec<u32> = suffix_class.iter().map(|c| c[0]).collect();
        roots.sort_unstable();
        roots.windows(2).any(|w| w[0] == w[1])
    };

    let mut search = Search {
        per_proc,
        total,
        final_value,
        visited: Visited::for_instance(per_proc, cfg),
        schedule: Vec::with_capacity(total),
        cfg: *cfg,
        stats: &mut stats,
        budget_hit: false,
        window: window_table,
        suffix_class,
        has_twins,
        nogoods: FxHashSet::default(),
        nogood_scratch: Vec::new(),
        class_scratch: Vec::new(),
        // Decide once per solve: a local depth histogram only when
        // observability is recording, so the disabled hot path carries
        // no `Option` update at all (the `if let` never matches).
        depth_hist: if obs::enabled() {
            Some(obs::Histogram::new())
        } else {
            None
        },
    };
    let mut frontier = vec![0u32; per_proc.len()];
    let found = search.dfs(&mut frontier, initial, &mut remaining_writes);
    let budget_hit = search.budget_hit;
    let schedule = std::mem::take(&mut search.schedule);
    let memo_key_kind = match &search.visited {
        Visited::Packed(_) => "packed",
        Visited::Interned { .. } => "interned",
        Visited::Legacy(_) => "legacy",
    };
    let depth_hist = search.depth_hist.take();
    drop(search);

    // Batch-flush the whole solve into the registry (one lock touch per
    // address, never per state). `SearchStats` itself stays obs-free.
    if obs::enabled() {
        obs::counter_add("search.states", stats.states);
        obs::counter_add("search.branches", stats.branches);
        obs::counter_add("search.memo.hits", stats.memo_hits);
        obs::counter_add("search.memo.misses", stats.memo_misses);
        obs::counter_add("search.window.prunes", stats.window_prunes);
        obs::counter_add("search.symmetry.prunes", stats.symmetry_prunes);
        obs::counter_add("search.nogood.hits", stats.nogood_hits);
        obs::counter_add("search.nogood.learned", stats.nogoods_learned);
        obs::counter_add(&format!("search.memo.keys.{memo_key_kind}"), 1);
        if let Some(h) = &depth_hist {
            obs::merge_histogram("search.depth", h);
        }
    }

    let verdict = if found {
        Verdict::Coherent(Schedule::from_refs(schedule))
    } else if budget_hit {
        Verdict::Unknown
    } else {
        Verdict::Incoherent(Violation {
            addr: ops.addr(),
            kind: ViolationKind::SearchExhausted,
        })
    };
    (verdict, stats)
}

/// The visited-state set, specialised to the instance shape (see the
/// module docs). All three representations memoize exactly the set of
/// `(frontier, value)` pairs; they differ only in key encoding and hasher,
/// so the search explores the identical state sequence under each.
enum Visited {
    /// ≤ 8 processes, ≤ 255 ops/process: the frontier packs into one `u64`
    /// (byte per process). Zero allocations per probe.
    Packed(FxHashSet<(u64, Value)>),
    /// General shape: intern each distinct frontier once, probe by dense id.
    /// Allocates only on first sight of a frontier (the shared
    /// [`vermem_util::intern`] machinery, also under the model-agnostic
    /// kernel of [`crate::kernel`]).
    Interned {
        /// Frontier → dense id.
        ids: SliceInterner<u32>,
        /// Visited `(frontier id, value)` pairs.
        seen: FxHashSet<(u32, Value)>,
    },
    /// Pre-overhaul representation (SipHash, `Vec` key per probe); kept for
    /// the memo-key ablation benchmark.
    Legacy(HashSet<(Vec<u32>, Value)>),
}

impl Visited {
    fn for_instance(per_proc: &[Vec<(OpRef, Op)>], cfg: &SearchConfig) -> Visited {
        if cfg.legacy_memo_keys {
            Visited::Legacy(HashSet::new())
        } else if per_proc.len() <= 8 && per_proc.iter().all(|v| v.len() <= u8::MAX as usize) {
            Visited::Packed(FxHashSet::default())
        } else {
            Visited::Interned {
                ids: SliceInterner::new(),
                seen: FxHashSet::default(),
            }
        }
    }

    /// Record `(frontier, value)`; true if it was not already present.
    fn insert(&mut self, frontier: &[u32], value: Value) -> bool {
        match self {
            Visited::Packed(set) => {
                let mut key = 0u64;
                for (p, &f) in frontier.iter().enumerate() {
                    debug_assert!(f <= u8::MAX as u32 && p < 8, "packed key precondition");
                    key |= u64::from(f) << (8 * p);
                }
                set.insert((key, value))
            }
            Visited::Interned { ids, seen } => {
                let (id, _) = ids.intern(frontier);
                seen.insert((id, value))
            }
            Visited::Legacy(set) => set.insert((frontier.to_vec(), value)),
        }
    }
}

/// Hash-cons program-order suffixes from the back: `out[p][j]` is the
/// class id of the op sequence `per_proc[p][j..]`, with `0` reserved for
/// the empty suffix. Equal ids ⇔ identical remaining op sequences.
fn suffix_classes(per_proc: &[Vec<(OpRef, Op)>]) -> Vec<Vec<u32>> {
    let mut intern: FxHashMap<(Op, u32), u32> = FxHashMap::default();
    let mut next = 1u32;
    per_proc
        .iter()
        .map(|h| {
            let mut cls = vec![0u32; h.len() + 1];
            for j in (0..h.len()).rev() {
                let key = (h[j].1, cls[j + 1]);
                let id = match intern.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = next;
                        next += 1;
                        intern.insert(key, id);
                        id
                    }
                };
                cls[j] = id;
            }
            cls
        })
        .collect()
}

struct Search<'a> {
    per_proc: &'a [Vec<(OpRef, Op)>],
    total: usize,
    final_value: Option<Value>,
    visited: Visited,
    schedule: Vec<OpRef>,
    cfg: SearchConfig,
    stats: &'a mut SearchStats,
    budget_hit: bool,
    /// Surviving feasibility windows from [`crate::windows::analyze`]
    /// (`None` when the technique is off or the pre-pass was skipped).
    window: Option<WindowTable>,
    /// Program-order suffix classes (see [`suffix_classes`]); empty when
    /// neither symmetry breaking nor nogood learning is on.
    suffix_class: Vec<Vec<u32>>,
    /// True iff nogood learning is on *and* at least two processes have
    /// identical full histories (otherwise the canonical key is a
    /// bijection of the memo key and the table would only duplicate it).
    has_twins: bool,
    /// Learned nogoods: canonical keys of refuted `(frontier, value)`
    /// states. The key erases process identity — the sorted multiset of
    /// per-process `(full-history class, frontier position)` pairs with
    /// the current value appended — so one refutation prunes every state
    /// reachable by permuting identical-history processes.
    nogoods: FxHashSet<Box<[u64]>>,
    /// Key-construction scratch (probe allocates nothing).
    nogood_scratch: Vec<u64>,
    /// Branch-time symmetry dedup scratch.
    class_scratch: Vec<u32>,
    /// `Some` only while observability is enabled: per-state schedule
    /// depths, batch-merged into the registry at solve end.
    depth_hist: Option<obs::Histogram>,
}

impl Search<'_> {
    /// Returns true if a completing schedule was found (left in
    /// `self.schedule`).
    fn dfs(
        &mut self,
        frontier: &mut Vec<u32>,
        mut current: Value,
        remaining_writes: &mut FxHashMap<Value, u32>,
    ) -> bool {
        // Greedy absorption of matching pure reads.
        let absorbed_base = self.schedule.len();
        if self.cfg.greedy_absorption {
            loop {
                let mut progressed = false;
                #[allow(clippy::needless_range_loop)] // frontier is mutated by index
                for p in 0..frontier.len() {
                    while let Some(&(r, op)) = self.per_proc[p].get(frontier[p] as usize) {
                        match op {
                            Op::Read { value, .. } if value == current => {
                                self.schedule.push(r);
                                frontier[p] += 1;
                                progressed = true;
                            }
                            _ => break,
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        let undo = |s: &mut Self, frontier: &mut Vec<u32>| {
            while s.schedule.len() > absorbed_base {
                let r = s.schedule.pop().expect("non-empty");
                frontier[r.proc.0 as usize] -= 1;
            }
        };

        // Completion check.
        if self.schedule.len() == self.total {
            if self.final_value.is_none_or(|f| f == current) {
                return true;
            }
            undo(self, frontier);
            return false;
        }

        // Memoization and budget.
        if self.cfg.memoize {
            if !self.visited.insert(frontier, current) {
                self.stats.memo_hits += 1;
                undo(self, frontier);
                return false;
            }
            self.stats.memo_misses += 1;
        }
        self.stats.states += 1;
        if let Some(h) = &mut self.depth_hist {
            h.record(self.schedule.len() as u64);
        }
        if let Some(max) = self.cfg.max_states {
            if self.stats.states > max {
                self.budget_hit = true;
                undo(self, frontier);
                return false;
            }
        }

        // Dead-end checks on blocked reads and the final value.
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(_, op)) = self.per_proc[p].get(f as usize) {
                if let Some(need) = op.read_value() {
                    if need != current && remaining_writes.get(&need).copied().unwrap_or(0) == 0 {
                        undo(self, frontier);
                        return false;
                    }
                }
            }
        }
        if let Some(fv) = self.final_value {
            if current != fv && remaining_writes.get(&fv).copied().unwrap_or(0) == 0 {
                undo(self, frontier);
                return false;
            }
        }

        // Nogood probe (PR 4, technique 3): the canonical key erases
        // process identity, so a hit means some permuted twin of this
        // state was already refuted — and the instance is invariant under
        // permutations of identical-history processes, so this state is
        // refuted too. Probed after the memo insert so the
        // `memo_misses == states` invariant is unchanged.
        if self.has_twins {
            let mut key = std::mem::take(&mut self.nogood_scratch);
            build_nogood_key(&mut key, &self.suffix_class, frontier, current);
            let hit = self.nogoods.contains(key.as_slice());
            self.nogood_scratch = key;
            if hit {
                self.stats.nogood_hits += 1;
                undo(self, frontier);
                return false;
            }
        }

        // Collect write-capable moves, preferring writes whose value some
        // blocked read is waiting for.
        let mut demanded: FxHashSet<Value> = FxHashSet::default();
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(_, op)) = self.per_proc[p].get(f as usize) {
                if let Some(need) = op.read_value() {
                    if need != current {
                        demanded.insert(need);
                    }
                }
            }
        }
        let mut moves: Vec<(bool, usize, OpRef, Op)> = Vec::new();
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(r, op)) = self.per_proc[p].get(f as usize) {
                let enabled = match op {
                    Op::Write { .. } => true,
                    Op::Rmw { read, .. } => read == current,
                    // Matching reads are moves only when absorption is off
                    // (ablation mode); with absorption they were consumed.
                    Op::Read { value, .. } => !self.cfg.greedy_absorption && value == current,
                };
                if enabled {
                    let hot = op.written_value().is_some_and(|v| demanded.contains(&v));
                    moves.push((hot, p, r, op));
                }
            }
        }
        // Value-symmetry breaking (PR 4, technique 2): moves whose
        // processes have identical remaining suffixes are interchangeable
        // — a coherent completion taking one exists iff one taking the
        // other does (role-swap of the identical suffixes) — so only the
        // first (lowest process id) branches. Done before the hot sort,
        // which is stable and cannot separate equal-suffix moves (equal
        // suffix ⇒ equal op ⇒ equal hotness).
        if self.cfg.prune.symmetry && moves.len() > 1 {
            let mut seen = std::mem::take(&mut self.class_scratch);
            seen.clear();
            let mut pruned = 0u64;
            moves.retain(|&(_, p, _, _)| {
                let sc = self.suffix_class[p][frontier[p] as usize];
                if seen.contains(&sc) {
                    pruned += 1;
                    false
                } else {
                    seen.push(sc);
                    true
                }
            });
            self.class_scratch = seen;
            self.stats.symmetry_prunes += pruned;
        }

        // Hot moves first.
        if self.cfg.hot_move_ordering {
            moves.sort_by_key(|&(hot, ..)| std::cmp::Reverse(hot));
        }

        for (_, p, r, op) in moves {
            // Window prune (PR 4, technique 1): the op would occupy
            // schedule position `len`; if its propagated feasibility
            // window excludes that position, no coherent schedule places
            // it there and the branch is dead.
            if let Some(w) = &self.window {
                if !w.allows(p, frontier[p], self.schedule.len()) {
                    self.stats.window_prunes += 1;
                    continue;
                }
            }
            self.stats.branches += 1;
            let saved = current;
            self.schedule.push(r);
            frontier[p] += 1;
            if let Some(written) = op.written_value() {
                *remaining_writes.get_mut(&written).expect("counted") -= 1;
                current = written;
            }

            if self.dfs(frontier, current, remaining_writes) {
                return true;
            }

            current = saved;
            if let Some(written) = op.written_value() {
                *remaining_writes.get_mut(&written).expect("counted") += 1;
            }
            frontier[p] -= 1;
            self.schedule.pop();
        }

        // Every move failed: this `(frontier, value)` state is refuted.
        // Learn its canonical projection as a nogood — unless a budget
        // exhaustion anywhere below makes "failed" mean "gave up".
        if self.has_twins && !self.budget_hit {
            let mut key = std::mem::take(&mut self.nogood_scratch);
            build_nogood_key(&mut key, &self.suffix_class, frontier, current);
            if self.nogoods.insert(key.clone().into_boxed_slice()) {
                self.stats.nogoods_learned += 1;
            }
            self.nogood_scratch = key;
        }

        undo(self, frontier);
        false
    }
}

/// Canonical nogood key of a post-absorption search state: the sorted
/// multiset of per-process `(full-history class << 32) | frontier` words,
/// with the current value appended. Sorting erases process identity, which
/// is exactly the invariance the instance has under permutations of
/// identical-history processes.
fn build_nogood_key(key: &mut Vec<u64>, suffix_class: &[Vec<u32>], frontier: &[u32], value: Value) {
    key.clear();
    for (p, &f) in frontier.iter().enumerate() {
        key.push((u64::from(suffix_class[p][0]) << 32) | u64::from(f));
    }
    key.sort_unstable();
    key.push(value.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{check_coherent_schedule, Op, TraceBuilder};

    fn solve(trace: &Trace) -> Verdict {
        solve_backtracking(trace, Addr::ZERO, &SearchConfig::default())
    }

    #[test]
    fn empty_trace_is_coherent() {
        let t = Trace::new();
        assert!(solve(&t).is_coherent());
    }

    #[test]
    fn single_write_read_pair() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn unwritten_read_value_detected_by_precheck() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(9u64)])
            .build();
        match solve(&t) {
            Verdict::Incoherent(v) => {
                assert!(matches!(v.kind, ViolationKind::NoWriterForValue { .. }))
            }
            other => panic!("expected incoherent, got {other:?}"),
        }
    }

    #[test]
    fn read_of_initial_value_ok() {
        let t = TraceBuilder::new()
            .proc([Op::r(5u64), Op::w(1u64)])
            .initial(0u32, 5u64)
            .build();
        assert!(solve(&t).is_coherent());
    }

    #[test]
    fn order_sensitive_instance() {
        // P0: W(1) R(2); P1: W(2) R(1) — coherent: W(1) R? no...
        // W(1), W(2): after both, current=last. Schedule: W(1),W(2),R(2)..R(1)
        // fails (R(1) after W(2) sees 2). Try W(2),W(1): R(1) ok then R(2)?
        // sees 1 — fails. Interleave: W(1); W(2); no. W(1), R? P0's R(2)
        // blocked. Actually: P1:W(2), P0:W(1), P1:R(1), then P0:R(2)? current
        // is 1 — fails. P0:W(1), P1:W(2), P0:R(2), P1:R(1)? R(1) sees 2 —
        // fails. Incoherent.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64)])
            .build();
        match solve(&t) {
            Verdict::Incoherent(v) => {
                assert_eq!(v.kind, ViolationKind::SearchExhausted)
            }
            other => panic!("expected incoherent, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_makes_it_coherent() {
        // Same as above but values rewritten once more: coherent.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64), Op::w(2u64)])
            .build();
        // W(1) [P0], ... hmm trust the solver + checker.
        let v = solve(&t);
        if let Some(s) = v.schedule() {
            check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
        } else {
            // Verify by brute force that it is indeed incoherent.
            assert!(brute_force(&t).is_none());
        }
    }

    #[test]
    fn final_value_constraint_respected() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("coherent with W(2) before W(1)");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn final_value_unwritable_detected() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .final_value(0u32, 9u64)
            .build();
        match solve(&t) {
            Verdict::Incoherent(v) => {
                assert_eq!(
                    v.kind,
                    ViolationKind::FinalValueUnwritable { value: Value(9) }
                )
            }
            other => panic!("expected incoherent, got {other:?}"),
        }
    }

    #[test]
    fn rmw_chain_ordering() {
        // Three RMWs forming a forced chain 0->1->2->3.
        let t = TraceBuilder::new()
            .proc([Op::rw(1u64, 2u64)])
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(2u64, 3u64)])
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("chain exists");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
        // Order must be P1, P0, P2.
        let procs: Vec<u16> = s.refs().iter().map(|r| r.proc.0).collect();
        assert_eq!(procs, vec![1, 0, 2]);
    }

    #[test]
    fn budget_produces_unknown_on_hard_instance() {
        let (t, _) = vermem_trace::gen::gen_hard_coherent(6, 8, 2, 3);
        let cfg = SearchConfig {
            max_states: Some(1),
            ..Default::default()
        };
        let v = solve_backtracking(&t, Addr::ZERO, &cfg);
        // With a 1-state budget the solver can only answer if the instance
        // is trivially easy; accept Coherent-or-Unknown but never wrong.
        if let Verdict::Coherent(s) = &v {
            check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
        }
    }

    #[test]
    fn generated_coherent_traces_verify() {
        for seed in 0..20 {
            let (t, _) = vermem_trace::gen::gen_hard_coherent(4, 6, 2, seed);
            let v = solve(&t);
            let s = v
                .schedule()
                .unwrap_or_else(|| panic!("generated trace must be coherent (seed {seed})"));
            check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
        }
    }

    #[test]
    fn ablation_configurations_agree() {
        use vermem_util::rng::StdRng;
        let configs = [
            SearchConfig::default(),
            SearchConfig {
                memoize: false,
                ..Default::default()
            },
            SearchConfig {
                greedy_absorption: false,
                ..Default::default()
            },
            SearchConfig {
                hot_move_ordering: false,
                ..Default::default()
            },
            SearchConfig {
                legacy_memo_keys: true,
                ..Default::default()
            },
            SearchConfig {
                prune: PruneConfig::none(),
                ..Default::default()
            },
            SearchConfig {
                prune: PruneConfig::parse("windows").unwrap(),
                ..Default::default()
            },
            SearchConfig {
                prune: PruneConfig::parse("symmetry").unwrap(),
                ..Default::default()
            },
            SearchConfig {
                prune: PruneConfig::parse("nogoods").unwrap(),
                ..Default::default()
            },
            SearchConfig {
                memoize: false,
                greedy_absorption: false,
                hot_move_ordering: false,
                legacy_memo_keys: false,
                max_states: None,
                prune: PruneConfig::none(),
            },
        ];
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(123_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..3) {
                            0 => Op::r(v),
                            1 => Op::w(v),
                            _ => Op::rw(v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let reference = solve_backtracking(&t, Addr::ZERO, &configs[0]).is_coherent();
            for (i, cfg) in configs.iter().enumerate().skip(1) {
                let got = solve_backtracking(&t, Addr::ZERO, cfg);
                assert_eq!(
                    got.is_coherent(),
                    reference,
                    "config {i} diverges on seed {seed}: {t:?}"
                );
                if let Some(s) = got.schedule() {
                    check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
                }
            }
        }
    }

    #[test]
    fn memo_representations_visit_identical_state_sequences() {
        // Packed (≤8 procs), interned (forced by 9 procs) and legacy keys
        // must agree on verdict *and* on the exact states/branches counts:
        // the memo set contents are representation-independent.
        use vermem_util::rng::StdRng;
        let legacy = SearchConfig {
            legacy_memo_keys: true,
            ..Default::default()
        };
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(777_000 + seed);
            // 9 processes forces the interned representation; the same trace
            // re-solved with legacy keys must match exactly.
            let procs = 9;
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=3);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..3) {
                            0 => Op::r(v),
                            1 => Op::w(v),
                            _ => Op::rw(v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let (v_fast, s_fast) =
                solve_backtracking_with_stats(&t, Addr::ZERO, &SearchConfig::default());
            let (v_legacy, s_legacy) = solve_backtracking_with_stats(&t, Addr::ZERO, &legacy);
            assert_eq!(v_fast, v_legacy, "seed {seed}: {t:?}");
            assert_eq!(s_fast, s_legacy, "seed {seed}: {t:?}");
        }
        // And a packed-representation instance (2 procs), same exactness.
        for seed in 0..40u64 {
            let (t, _) = vermem_trace::gen::gen_hard_coherent(2, 6, 2, seed);
            let (v_fast, s_fast) =
                solve_backtracking_with_stats(&t, Addr::ZERO, &SearchConfig::default());
            let (v_legacy, s_legacy) = solve_backtracking_with_stats(&t, Addr::ZERO, &legacy);
            assert_eq!(v_fast, v_legacy, "seed {seed}");
            assert_eq!(s_fast, s_legacy, "seed {seed}");
        }
    }

    #[test]
    fn ops_entry_points_match_trace_entry_points() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64), Op::w(2u64)])
            .build();
        let ops = vermem_trace::AddrOps::of(&t, Addr::ZERO);
        let cfg = SearchConfig::default();
        assert_eq!(
            solve_backtracking_ops_with_stats(&ops, &cfg),
            solve_backtracking_with_stats(&t, Addr::ZERO, &cfg)
        );
        assert_eq!(precheck_ops(&ops), precheck(&t, Addr::ZERO));
    }

    #[test]
    fn agrees_with_brute_force_on_small_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=3);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..3) {
                            0 => Op::r(v),
                            1 => Op::w(v),
                            _ => Op::rw(v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let expected = brute_force(&t).is_some();
            let got = solve(&t).is_coherent();
            assert_eq!(got, expected, "divergence on seed {seed}: {t:?}");
        }
    }

    /// Brute-force all interleavings (tiny instances only).
    fn brute_force(trace: &Trace) -> Option<Schedule> {
        fn rec(trace: &Trace, frontier: &mut Vec<u32>, acc: &mut Vec<OpRef>, total: usize) -> bool {
            if acc.len() == total {
                let s = Schedule::from_refs(acc.iter().copied());
                return check_coherent_schedule(trace, Addr::ZERO, &s).is_ok();
            }
            for p in 0..frontier.len() {
                let h = &trace.histories()[p];
                if (frontier[p] as usize) < h.len() {
                    acc.push(OpRef::new(p as u16, frontier[p]));
                    frontier[p] += 1;
                    if rec(trace, frontier, acc, total) {
                        return true;
                    }
                    frontier[p] -= 1;
                    acc.pop();
                }
            }
            false
        }
        let mut frontier = vec![0u32; trace.num_procs()];
        let mut acc = Vec::new();
        let total = trace.num_ops();
        if rec(trace, &mut frontier, &mut acc, total) {
            Some(Schedule::from_refs(acc))
        } else {
            None
        }
    }
}
