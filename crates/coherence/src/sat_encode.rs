//! VMC → SAT: decide coherence by encoding the existence of a coherent
//! schedule as a CNF formula and running the CDCL solver.
//!
//! This is the reduction in the *opposite* direction from the paper's
//! constructions (which prove hardness by SAT → VMC); together they close
//! the loop: NP-complete VMC instances are solved, in practice, through the
//! very problem they were proven equivalent to.
//!
//! ## Encoding
//!
//! For the `n` operations at the queried address:
//!
//! * **Order variables** `o(i,j)` for operations of *different* processes
//!   assert "i is scheduled before j"; same-process pairs are compile-time
//!   constants from program order. Totality is structural (`o(j,i) = ¬o(i,j)`);
//!   transitivity is enforced by O(n³) clauses.
//! * **Read mapping selectors**: each read `r` of value `v` chooses either a
//!   write `w` with `written(w) = v` — requiring `o(w,r)` and, for every
//!   other write `w'`, `o(w',w) ∨ o(r,w')` (nothing writes between `w` and
//!   `r`) — or, when `v = d_I`, the initial value, requiring `o(r,w')` for
//!   every write `w'`.
//! * **Final value selectors**: if `d_F` is configured, some write of `d_F`
//!   must follow every other write.
//!
//! A model yields a total order; we sort, build the schedule, and validate
//! it with the Theorem 4.2 certificate checker before returning.

use crate::backtrack::precheck;
use crate::verdict::{Verdict, Violation, ViolationKind};
use vermem_sat::{CdclSolver, Cnf, Lit, Model, SatResult};
use vermem_trace::{check_coherent_schedule, Addr, Op, OpRef, Schedule, Trace};

/// A compiled VMC-to-CNF encoding, retaining enough structure to decode a
/// model back into a schedule.
pub struct VmcEncoding {
    cnf: Cnf,
    ops: Vec<(OpRef, Op)>,
    /// Triangular order-variable table: `order[i][j - i - 1]` for i < j, or
    /// `None` when program order decides the pair.
    order: Vec<Vec<Option<vermem_sat::Var>>>,
    trivially_unsat: bool,
}

#[derive(Clone, Copy)]
enum OrdTerm {
    Const(bool),
    Lit(Lit),
}

impl VmcEncoding {
    /// The generated CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Number of encoded operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    fn ord(&self, i: usize, j: usize) -> OrdTerm {
        debug_assert_ne!(i, j);
        let (a, b, flip) = if i < j { (i, j, false) } else { (j, i, true) };
        let term = match self.order[a][b - a - 1] {
            Some(v) => OrdTerm::Lit(v.pos()),
            None => {
                // Same process: program order decides.
                let (ri, rj) = (self.ops[a].0, self.ops[b].0);
                debug_assert_eq!(ri.proc, rj.proc);
                OrdTerm::Const(ri.index < rj.index)
            }
        };
        match (term, flip) {
            (t, false) => t,
            (OrdTerm::Const(c), true) => OrdTerm::Const(!c),
            (OrdTerm::Lit(l), true) => OrdTerm::Lit(!l),
        }
    }

    /// Evaluate "i before j" under a model.
    fn before(&self, model: &Model, i: usize, j: usize) -> bool {
        match self.ord(i, j) {
            OrdTerm::Const(c) => c,
            OrdTerm::Lit(l) => model.lit_value(l).expect("model covers all vars"),
        }
    }

    /// Decode a model into the schedule it represents.
    pub fn decode(&self, model: &Model) -> Schedule {
        let n = self.ops.len();
        // Position of op i = number of ops before it (total order).
        let mut order: Vec<usize> = (0..n).collect();
        let mut pos = vec![0usize; n];
        for (i, p) in pos.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && self.before(model, j, i) {
                    *p += 1;
                }
            }
        }
        order.sort_by_key(|&i| pos[i]);
        Schedule::from_refs(order.into_iter().map(|i| self.ops[i].0))
    }
}

/// Build the CNF encoding for the operations of `trace` at `addr`.
pub fn encode_vmc(trace: &Trace, addr: Addr) -> VmcEncoding {
    let ops: Vec<(OpRef, Op)> = trace
        .iter_ops()
        .filter(|(_, op)| op.addr() == addr)
        .collect();
    let n = ops.len();
    let mut cnf = Cnf::new();

    // Allocate order variables for cross-process pairs.
    let mut order: Vec<Vec<Option<vermem_sat::Var>>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(n - i - 1);
        for j in i + 1..n {
            if ops[i].0.proc == ops[j].0.proc {
                row.push(None);
            } else {
                row.push(Some(cnf.new_var()));
            }
        }
        order.push(row);
    }

    let mut enc = VmcEncoding {
        cnf,
        ops,
        order,
        trivially_unsat: false,
    };

    // Clause helper with constant folding: add (¬a ∨ ¬b ∨ c).
    fn add_impl2(cnf: &mut Cnf, a: OrdTerm, b: OrdTerm, c: OrdTerm) {
        let mut lits = Vec::with_capacity(3);
        for (t, negate) in [(a, true), (b, true), (c, false)] {
            match (t, negate) {
                (OrdTerm::Const(v), neg) => {
                    if v != neg {
                        return; // term is true: clause satisfied
                    }
                    // term false: drop it
                }
                (OrdTerm::Lit(l), true) => lits.push(!l),
                (OrdTerm::Lit(l), false) => lits.push(l),
            }
        }
        cnf.add_clause(lits);
    }

    // Transitivity: ord(a,b) ∧ ord(b,c) → ord(a,c).
    for a in 0..n {
        for b in 0..n {
            if b == a {
                continue;
            }
            for c in 0..n {
                if c == a || c == b {
                    continue;
                }
                // Skip triples fully inside one process (always consistent).
                if enc.ops[a].0.proc == enc.ops[b].0.proc && enc.ops[b].0.proc == enc.ops[c].0.proc
                {
                    continue;
                }
                let (tab, tbc, tac) = (enc.ord(a, b), enc.ord(b, c), enc.ord(a, c));
                add_impl2(&mut enc.cnf, tab, tbc, tac);
            }
        }
    }

    let writes: Vec<usize> = (0..n).filter(|&i| enc.ops[i].1.is_writing()).collect();
    let initial = trace.initial(addr);

    // Read mapping constraints.
    for r in 0..n {
        let Some(v) = enc.ops[r].1.read_value() else {
            continue;
        };
        let mut selectors: Vec<Lit> = Vec::new();

        if v == initial {
            // Selector: r reads the initial value ⇒ r precedes every write.
            let s = enc.cnf.new_var().pos();
            for &w in &writes {
                if w == r {
                    continue;
                }
                match enc.ord(r, w) {
                    OrdTerm::Const(true) => {}
                    OrdTerm::Const(false) => {
                        // r after some write in program order: selector dead.
                        enc.cnf.add_clause([!s]);
                        break;
                    }
                    OrdTerm::Lit(l) => enc.cnf.add_clause([!s, l]),
                }
            }
            selectors.push(s);
        }

        for &w in &writes {
            if w == r || enc.ops[w].1.written_value() != Some(v) {
                continue;
            }
            let s = enc.cnf.new_var().pos();
            let mut dead = false;
            // w before r.
            match enc.ord(w, r) {
                OrdTerm::Const(true) => {}
                OrdTerm::Const(false) => dead = true,
                OrdTerm::Lit(l) => enc.cnf.add_clause([!s, l]),
            }
            // No other write strictly between w and r.
            if !dead {
                for &x in &writes {
                    if x == w || x == r {
                        continue;
                    }
                    // ord(x,w) ∨ ord(r,x): either x before w, or x after r.
                    let mut lits = vec![!s];
                    let mut sat = false;
                    for t in [enc.ord(x, w), enc.ord(r, x)] {
                        match t {
                            OrdTerm::Const(true) => {
                                sat = true;
                                break;
                            }
                            OrdTerm::Const(false) => {}
                            OrdTerm::Lit(l) => lits.push(l),
                        }
                    }
                    if sat {
                        continue;
                    }
                    if lits.len() == 1 {
                        dead = true;
                        break;
                    }
                    enc.cnf.add_clause(lits);
                }
            }
            if dead {
                enc.cnf.add_clause([!s]);
            }
            selectors.push(s);
        }

        if selectors.is_empty() {
            enc.trivially_unsat = true;
        } else {
            enc.cnf.add_clause(selectors);
        }
    }

    // Final value: some write of d_F follows every other write.
    if let Some(f) = trace.final_value(addr) {
        if writes.is_empty() {
            if f != initial {
                enc.trivially_unsat = true;
            }
        } else {
            let mut selectors = Vec::new();
            for &w in &writes {
                if enc.ops[w].1.written_value() != Some(f) {
                    continue;
                }
                let t = enc.cnf.new_var().pos();
                let mut dead = false;
                for &x in &writes {
                    if x == w {
                        continue;
                    }
                    match enc.ord(x, w) {
                        OrdTerm::Const(true) => {}
                        OrdTerm::Const(false) => {
                            dead = true;
                            break;
                        }
                        OrdTerm::Lit(l) => enc.cnf.add_clause([!t, l]),
                    }
                }
                if dead {
                    enc.cnf.add_clause([!t]);
                }
                selectors.push(t);
            }
            if selectors.is_empty() {
                enc.trivially_unsat = true;
            } else {
                enc.cnf.add_clause(selectors);
            }
        }
    }

    enc
}

/// Decide coherence at `addr` via the SAT encoding. The witness schedule
/// (when coherent) is decoded from the model and validated before return.
pub fn solve_sat(trace: &Trace, addr: Addr) -> Verdict {
    if let Some(v) = precheck(trace, addr) {
        return Verdict::Incoherent(v);
    }
    let enc = encode_vmc(trace, addr);
    if enc.trivially_unsat {
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::SearchExhausted,
        });
    }
    let mut solver = CdclSolver::new(enc.cnf());
    match solver.solve() {
        SatResult::Sat(model) => {
            let schedule = enc.decode(&model);
            assert!(
                check_coherent_schedule(trace, addr, &schedule).is_ok(),
                "SAT encoding produced an invalid witness — encoding bug"
            );
            Verdict::Coherent(schedule)
        }
        SatResult::Unsat => Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::SearchExhausted,
        }),
    }
}

/// As [`solve_sat`], but with **certified** negative answers: when the CDCL
/// solver reports the encoding unsatisfiable, its clausal proof is checked
/// by the independent RUP checker ([`vermem_sat::check_unsat_proof`])
/// before the incoherence verdict is returned. Positive answers are always
/// witness-checked, so with this entry point *both* directions carry
/// machine-checked evidence.
///
/// # Panics
/// Panics if the solver emits an invalid refutation proof (a solver bug).
pub fn solve_sat_certified(trace: &Trace, addr: Addr) -> Verdict {
    if let Some(v) = precheck(trace, addr) {
        return Verdict::Incoherent(v);
    }
    let enc = encode_vmc(trace, addr);
    if enc.trivially_unsat {
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::SearchExhausted,
        });
    }
    let mut solver = CdclSolver::new(enc.cnf());
    solver.enable_proof_logging();
    match solver.solve() {
        SatResult::Sat(model) => {
            let schedule = enc.decode(&model);
            assert!(
                check_coherent_schedule(trace, addr, &schedule).is_ok(),
                "SAT encoding produced an invalid witness — encoding bug"
            );
            Verdict::Coherent(schedule)
        }
        SatResult::Unsat => {
            let proof = solver.take_proof().expect("logging enabled");
            assert_eq!(
                vermem_sat::check_unsat_proof(enc.cnf(), &proof),
                vermem_sat::ProofCheck::Valid,
                "CDCL produced an invalid refutation proof — solver bug"
            );
            Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::SearchExhausted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking, SearchConfig};
    use vermem_trace::{Op, TraceBuilder, Value};

    fn sat(trace: &Trace) -> Verdict {
        solve_sat(trace, Addr::ZERO)
    }

    #[test]
    fn trivial_cases() {
        assert!(sat(&Trace::new()).is_coherent());
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::r(1u64)]).build();
        assert!(sat(&t).is_coherent());
    }

    #[test]
    fn incoherent_cross_reads() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64)])
            .build();
        assert!(sat(&t).is_incoherent());
    }

    #[test]
    fn initial_value_reads() {
        let t = TraceBuilder::new()
            .proc([Op::r(0u64), Op::w(1u64)])
            .proc([Op::r(0u64), Op::r(1u64)])
            .build();
        assert!(sat(&t).is_coherent());
    }

    #[test]
    fn initial_read_after_program_order_write_incoherent() {
        // P0: W(1) then R(0) where 0 = d_I and never rewritten: impossible.
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::r(0u64)]).build();
        assert!(sat(&t).is_incoherent());
    }

    #[test]
    fn final_value_forces_write_order() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = sat(&t);
        let s = v.schedule().expect("coherent");
        // Last op must be the write of 1.
        let last = *s.refs().last().unwrap();
        assert_eq!(t.op(last).unwrap().written_value(), Some(Value(1)));
    }

    #[test]
    fn rmw_atomicity_in_encoding() {
        // Two RMWs both reading 0 and writing different values: only one can
        // read the initial 0, so incoherent... unless one writes 0 again.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(0u64, 2u64)])
            .build();
        assert!(sat(&t).is_incoherent());

        let t2 = TraceBuilder::new()
            .proc([Op::rw(0u64, 0u64)])
            .proc([Op::rw(0u64, 2u64)])
            .build();
        assert!(sat(&t2).is_coherent());
    }

    #[test]
    fn certified_solver_agrees_and_proofs_check() {
        use vermem_util::rng::StdRng;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(77_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..3u64);
                        if rng.gen_bool(0.5) {
                            Op::r(v)
                        } else {
                            Op::w(v)
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            // solve_sat_certified panics on an invalid proof, so simply
            // running it on incoherent instances is the assertion.
            let certified = solve_sat_certified(&t, Addr::ZERO);
            let plain = sat(&t);
            assert_eq!(certified.is_coherent(), plain.is_coherent(), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_backtracking_on_random_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..80u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let procs = rng.gen_range(1..=4);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..4u64);
                        match rng.gen_range(0..3) {
                            0 => Op::r(v),
                            1 => Op::w(v),
                            _ => Op::rw(v, rng.gen_range(0..4u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            let via_sat = sat(&t);
            assert_eq!(
                exact.is_coherent(),
                via_sat.is_coherent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn generated_coherent_traces_verify_via_sat() {
        for seed in 0..10 {
            let (t, _) = vermem_trace::gen::gen_hard_coherent(3, 5, 2, seed);
            assert!(sat(&t).is_coherent(), "seed {seed}");
        }
    }

    #[test]
    fn encoding_size_is_polynomial() {
        let (t, _) = vermem_trace::gen::gen_hard_coherent(4, 5, 2, 1);
        let enc = encode_vmc(&t, Addr::ZERO);
        let n = enc.num_ops() as u64;
        // Order vars ≤ n(n-1)/2, clauses O(n^3).
        assert!(u64::from(enc.cnf().num_vars()) <= n * n);
        assert!((enc.cnf().num_clauses() as u64) <= 2 * n * n * n + n * n);
    }
}
