//! The ingest-path storage contract, and its dense default.
//!
//! The per-event hot path of the streaming engine touches four per-address
//! tables (the placement index, the per-process cursor map, the deferred
//! read queues, the write-count class map) plus two router-level maps (the
//! per-shard address table and the first-touch initial/final lookup). The
//! [`Tables`] / [`Router`] / [`AddrMap`] traits pin down exactly those
//! touches, so the monitor logic in `stream/mod.rs` is written *once* and
//! the two storage strategies differ only in representation — which is why
//! the dense and legacy configurations produce bit-identical reports by
//! construction.
//!
//! [`DenseTables`] is the default: open-addressing Fx-hash maps
//! ([`DenseMap`]), slab-allocated bucket lists with free-list + arena
//! reuse ([`Slab`], [`Arena`]), and plain per-process vectors. Steady-state
//! ingest performs no heap allocation and no SipHash — every structure
//! reaches its working-set high-water mark and then only reuses memory
//! (asserted by the counting-allocator harness in
//! `tests/stream_alloc.rs`). The pre-dense std-`HashMap` strategy lives in
//! [`super::legacy`] behind [`super::HotPathConfig`] for the `e_hotpath`
//! ablation.

use super::{AddrStream, PendingRead};
use std::collections::{BTreeMap, VecDeque};
use vermem_trace::{Addr, Value};
use vermem_util::densemap::{Arena, DenseMap, Slab};

/// Per-address storage strategy for the greedy placement monitor.
///
/// Slot lists are sorted ascending (slots commit in ascending order and
/// retire from the bottom); cursors use *presence* semantics — a process
/// has no cursor until its first placed read or own write, and
/// [`Tables::cursor_floor`] is the minimum over present cursors only.
pub(crate) trait Tables: Sized + Send + 'static {
    /// Router-level tables (initials/finals and the first-touch set).
    type Router: Router;
    /// The per-shard address table.
    type AddrMap: AddrMap<Self>;
    /// Whether ingest decodes through `ChunkReader::next_batch` (the block
    /// decoder) instead of one `next()` call per event.
    const BATCHED: bool;

    /// Fresh tables for an address with `procs` processes, seeded with
    /// `initial` current at slot 0.
    fn new(procs: usize, initial: Value) -> Self;

    // --- placement index: value → sorted live slots ---

    /// Earliest live slot in `min..=max_slot` where `value` is current.
    fn place(&self, max_slot: usize, value: Value, min: usize) -> Option<usize>;
    /// Record that `slot` committed `value` (strictly ascending slots).
    fn commit_slot(&mut self, value: Value, slot: usize);
    /// Drop retired `slot` (the globally lowest live slot) for `value`.
    fn retire_slot(&mut self, value: Value, slot: usize);

    // --- per-process placement cursors ---

    /// The cursor of `proc`, if it has one.
    fn cursor(&self, proc: u16) -> Option<usize>;
    /// Set (creating if absent) the cursor of `proc`.
    fn set_cursor(&mut self, proc: u16, slot: usize);
    /// Minimum over *present* cursors; `0` when no process has one.
    fn cursor_floor(&self) -> usize;

    // --- deferred reads, per process in program order ---

    /// The deferred reads of `proc` (empty slice when none).
    fn pending(&self, proc: u16) -> &[PendingRead];
    /// Append a deferred read for `proc`.
    fn pending_push(&mut self, proc: u16, pr: PendingRead);
    /// Remove the first `n` deferred reads of `proc`.
    fn pending_pop_front(&mut self, proc: u16, n: usize);
    /// Move `proc`'s queue out wholesale (for drain-and-report loops that
    /// also need `&mut self`); pair with [`Tables::pending_restore`] to
    /// hand the emptied queue's capacity back.
    fn pending_take(&mut self, proc: u16) -> Vec<PendingRead>;
    /// Put a queue taken by [`Tables::pending_take`] back in place.
    fn pending_restore(&mut self, proc: u16, queue: Vec<PendingRead>);
    /// Push the processes that hold deferred reads, ascending, onto `out`.
    fn pending_procs(&self, out: &mut Vec<u16>);

    // --- read-map class write counts ---

    /// Increment and return the number of times `value` has been written.
    fn bump_write(&mut self, value: Value) -> u32;
}

/// Router-level tables: declared initial/final values plus the first-touch
/// address set.
pub(crate) trait Router: Default + Send + 'static {
    /// Record a declared initial value.
    fn set_initial(&mut self, addr: Addr, value: Value);
    /// Record a declared final value.
    fn set_final(&mut self, addr: Addr, value: Value);
    /// First touch of `addr`: record it and return its
    /// `(initial, declared final)`; `None` on every later touch.
    fn first_touch(&mut self, addr: Addr) -> Option<(Value, Option<Value>)>;
}

/// The per-shard address table.
pub(crate) trait AddrMap<T: Tables>: Default + Send {
    /// The state of `addr`, if the shard has seen it.
    fn get(&self, addr: Addr) -> Option<&AddrStream<T>>;
    /// The state of `addr`, created by `make` on first touch.
    fn get_or_insert_with(
        &mut self,
        addr: Addr,
        make: impl FnOnce() -> AddrStream<T>,
    ) -> &mut AddrStream<T>;
    /// Move every entry into `out` (the end-of-stream merge).
    fn drain_into(&mut self, out: &mut BTreeMap<Addr, AddrStream<T>>);
}

/// Cursor sentinel: the process has not placed a read or committed a write
/// yet. Slots count committed writes, so a real cursor never reaches it.
const NO_CURSOR: usize = usize::MAX;

/// Dense, index-addressed tables: the allocation-free default.
pub(crate) struct DenseTables {
    /// `value → index into `buckets`` on the Fx hash stream.
    slot_lists: DenseMap<u64, u32>,
    /// The sorted live-slot list of each value with live slots.
    buckets: Slab<VecDeque<usize>>,
    /// Emptied bucket lists, shelved with their capacity for reuse.
    bucket_arena: Arena<VecDeque<usize>>,
    /// Per-process cursor, [`NO_CURSOR`] = absent.
    cursors: Vec<usize>,
    /// Per-process deferred reads.
    deferred: Vec<Vec<PendingRead>>,
    /// `value → times written` on the Fx hash stream.
    write_counts: DenseMap<u64, u32>,
}

impl Tables for DenseTables {
    type Router = DenseRouter;
    type AddrMap = DenseAddrMap<DenseTables>;
    const BATCHED: bool = true;

    fn new(procs: usize, initial: Value) -> Self {
        let mut t = DenseTables {
            slot_lists: DenseMap::new(),
            buckets: Slab::new(),
            bucket_arena: Arena::new(),
            cursors: vec![NO_CURSOR; procs],
            deferred: vec![Vec::new(); procs],
            write_counts: DenseMap::new(),
        };
        // Slot 0 carries the initial value.
        t.commit_slot(initial, 0);
        t
    }

    #[inline]
    fn place(&self, max_slot: usize, value: Value, min: usize) -> Option<usize> {
        let &idx = self.slot_lists.get(value.0)?;
        let slots = self.buckets.get(idx).expect("indexed bucket is live");
        let i = slots.partition_point(|&s| s < min);
        slots.get(i).copied().filter(|&s| s <= max_slot)
    }

    fn commit_slot(&mut self, value: Value, slot: usize) {
        match self.slot_lists.get(value.0) {
            Some(&idx) => self
                .buckets
                .get_mut(idx)
                .expect("indexed bucket is live")
                .push_back(slot),
            None => {
                let mut bucket = self.bucket_arena.alloc();
                bucket.push_back(slot);
                let idx = self.buckets.insert(bucket);
                self.slot_lists.insert(value.0, idx);
            }
        }
    }

    fn retire_slot(&mut self, value: Value, slot: usize) {
        let Some(&idx) = self.slot_lists.get(value.0) else {
            return;
        };
        let bucket = self.buckets.get_mut(idx).expect("indexed bucket is live");
        debug_assert_eq!(bucket.front().copied(), Some(slot));
        bucket.pop_front();
        if bucket.is_empty() {
            self.slot_lists.remove(value.0);
            let bucket = self.buckets.remove(idx).expect("just emptied");
            self.bucket_arena.free(bucket);
        }
    }

    #[inline]
    fn cursor(&self, proc: u16) -> Option<usize> {
        let c = self.cursors[usize::from(proc)];
        (c != NO_CURSOR).then_some(c)
    }

    #[inline]
    fn set_cursor(&mut self, proc: u16, slot: usize) {
        debug_assert_ne!(slot, NO_CURSOR);
        self.cursors[usize::from(proc)] = slot;
    }

    fn cursor_floor(&self) -> usize {
        self.cursors
            .iter()
            .copied()
            .filter(|&c| c != NO_CURSOR)
            .min()
            .unwrap_or(0)
    }

    #[inline]
    fn pending(&self, proc: u16) -> &[PendingRead] {
        &self.deferred[usize::from(proc)]
    }

    #[inline]
    fn pending_push(&mut self, proc: u16, pr: PendingRead) {
        self.deferred[usize::from(proc)].push(pr);
    }

    fn pending_pop_front(&mut self, proc: u16, n: usize) {
        self.deferred[usize::from(proc)].drain(..n);
    }

    fn pending_take(&mut self, proc: u16) -> Vec<PendingRead> {
        std::mem::take(&mut self.deferred[usize::from(proc)])
    }

    fn pending_restore(&mut self, proc: u16, queue: Vec<PendingRead>) {
        self.deferred[usize::from(proc)] = queue;
    }

    fn pending_procs(&self, out: &mut Vec<u16>) {
        for (p, queue) in self.deferred.iter().enumerate() {
            if !queue.is_empty() {
                out.push(p as u16);
            }
        }
    }

    #[inline]
    fn bump_write(&mut self, value: Value) -> u32 {
        let count = self.write_counts.get_or_insert_with(value.0, || 0);
        *count += 1;
        *count
    }
}

/// Dense router tables on the Fx hash stream (no SipHash per event).
#[derive(Default)]
pub(crate) struct DenseRouter {
    initials: DenseMap<u32, Value>,
    finals: DenseMap<u32, Value>,
    seen: DenseMap<u32, ()>,
}

impl Router for DenseRouter {
    fn set_initial(&mut self, addr: Addr, value: Value) {
        self.initials.insert(addr.0, value);
    }

    fn set_final(&mut self, addr: Addr, value: Value) {
        self.finals.insert(addr.0, value);
    }

    #[inline]
    fn first_touch(&mut self, addr: Addr) -> Option<(Value, Option<Value>)> {
        if self.seen.insert(addr.0, ()).is_some() {
            return None;
        }
        Some((
            self.initials.get(addr.0).copied().unwrap_or(Value::INITIAL),
            self.finals.get(addr.0).copied(),
        ))
    }
}

/// Dense per-shard address table.
pub(crate) struct DenseAddrMap<T: Tables>(DenseMap<u32, AddrStream<T>>);

impl<T: Tables> Default for DenseAddrMap<T> {
    fn default() -> Self {
        DenseAddrMap(DenseMap::new())
    }
}

impl<T: Tables> AddrMap<T> for DenseAddrMap<T> {
    #[inline]
    fn get(&self, addr: Addr) -> Option<&AddrStream<T>> {
        self.0.get(addr.0)
    }

    #[inline]
    fn get_or_insert_with(
        &mut self,
        addr: Addr,
        make: impl FnOnce() -> AddrStream<T>,
    ) -> &mut AddrStream<T> {
        self.0.get_or_insert_with(addr.0, make)
    }

    fn drain_into(&mut self, out: &mut BTreeMap<Addr, AddrStream<T>>) {
        for (key, state) in self.0.drain() {
            out.insert(Addr(key), state);
        }
    }
}
