//! Sharded bounded-memory streaming verification — the engine behind
//! `vermem serve`.
//!
//! The paper's introduction motivates coherence verification as an *online
//! hardware error detector*; [`crate::online`] is the single-threaded
//! prototype of that idea, but it never retires state and only understands
//! one in-memory event feed. This module turns it into a real engine:
//!
//! * **Input** is the binary wire format, fed in arbitrary chunks through
//!   [`vermem_trace::binary::ChunkReader`] — both v2 batch files and v3
//!   interleaved event streams, with records split anywhere.
//! * **Sharding**: events are routed per-address onto `jobs` worker
//!   threads over bounded SPSC queues ([`vermem_util::pool::spsc_channel`],
//!   backpressure visible on the `pool.spsc.queue` gauge). Addresses are
//!   independent (§3: coherence is a per-address property), so a shard owns
//!   its addresses outright and no cross-shard synchronization exists.
//! * **Windowed retirement**: each address keeps (a) a greedy §5.2
//!   placement monitor — the *summary*: committed-value slots, a read-map
//!   frontier of per-process cursors, deferred reads — and (b) a retention
//!   buffer of the raw ops. Once the buffer outgrows the configured window
//!   while the address is still on the polynomial fast path, the raw ops
//!   are **retired** (dropped, counted in `retired_bytes`) and the summary
//!   alone carries the verification forward; committed slots below every
//!   process's frontier are retired the same way. Memory is O(window ×
//!   live addresses) regardless of stream length.
//! * **Escalation preserves bit-identical verdicts**: any address the
//!   summary cannot seal (RMWs, duplicate written values, writes of the
//!   initial value, an unplaced read, a final-value mismatch) is *pinned*
//!   and handed to the exact tiered kernel at end of stream, on exactly
//!   the ops the batch [`vermem_trace::AddrIndex`] would have produced —
//!   from the retention buffer when it survived, or re-collected by a
//!   second [`StreamVerifier::ingest_replay`] pass when it was retired.
//!   The final reduction walks addresses in ascending order and stops at
//!   the first failure, mirroring [`crate::verify_execution_par`], so the
//!   verdict, first [`Violation`], [`SearchStats`] and [`TierStats`] are
//!   bit-identical to the batch engine at every `jobs` and window setting.
//!
//! ## Why a sealed summary is sound
//!
//! A *sealed-clean* address satisfies: no RMWs, no value written twice, no
//! write of the initial value (the read-map class of Figure 5.3), every
//! read greedily placed, no deferred reads left, and the declared final
//! value equal to the last committed write. The greedy placement *is* a
//! coherent schedule for the address — commit order as the write order,
//! each read inserted at its placed slot — so the address is coherent; and
//! because the class is exactly the one the batch dispatcher sends to the
//! (complete) read-map solver, the batch verdict is `Coherent` with
//! `Tier::Frontline` and zero search stats: precisely what the sealed path
//! reports. Every other case escalates to the same exact kernel the batch
//! engine runs. Retirement never flips a verdict: dropping raw ops is only
//! a bet that the address will seal — if it later pins, the ops are
//! re-materialized losslessly by the replay pass; retiring committed slots
//! below the global read frontier can at worst make the monitor *defer* a
//! read that batch placement would have served, which pins the address and
//! escalates it (extra work, never a wrong answer).
//!
//! Detection events ([`OnlineViolation`]) and their issue→detect latency
//! gap are recorded only when the stream is declared *temporal*
//! ([`StreamConfig::temporal`]) — i.e. the interleaving is the machine's
//! commit order, where "the greedy monitor got stuck" is meaningful as a
//! hardware error detection. They are metrics, not verdicts: the verdict
//! always comes from the sealed/exact reduction above.

//! ## Dense hot paths
//!
//! Steady-state ingest runs on dense, index-addressed storage: the
//! open-addressing Fx-hash maps, slabs and arenas of
//! [`vermem_util::densemap`], per-process cursor vectors, and block decode
//! through [`ChunkReader::next_batch`] — no per-event heap allocation, no
//! SipHash. The monitor logic is generic over an internal `Tables`
//! contract, so the pre-dense std-`HashMap` strategy shares every line of
//! it and produces bit-identical reports by construction; it is kept
//! selectable through [`HotPathConfig`] for the `e_hotpath` ablation.

mod legacy;
mod tables;

use crate::explain::{minimize_incoherent_core, ExplainConfig};
use crate::online::{OnlineCause, OnlineViolation};
use crate::verdict::Verdict;
use crate::{SearchConfig, SearchStats, Strategy, Tier, TierStats, Violation, VmcVerifier};
use legacy::LegacyTables;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::thread::JoinHandle;
use tables::{AddrMap, DenseTables, Router, Tables};
use vermem_trace::binary::{ChunkReader, DecodeError, StreamEvent};
use vermem_trace::{Addr, AddrOps, Op, OpRef, ProcId, ProcessHistory, Trace, Value};
use vermem_util::json::JsonWriter;
use vermem_util::obs;
use vermem_util::pool::{available_jobs, scoped_map, spsc_channel, CancelToken, SpscSender};

/// Events per routed batch handed to a shard queue.
const BATCH: usize = 256;
/// Batches in flight per shard before the router blocks (backpressure).
const QUEUE_CAP: usize = 8;
/// Maximum detection events retained in a report.
const DETECTION_CAP: usize = 1024;
/// Maximum latency samples retained per shard.
const LATENCY_CAP: usize = 65_536;
/// Accounting quantum for `peak_retained_windows` when no window is set.
const UNBOUNDED_SLAB: usize = 4096;
/// Maximum forensic bundles captured per shard, and per run after the
/// end-of-stream merge. Bundles carry op payloads and a budgeted solve
/// each, so the cap sits far below `DETECTION_CAP`.
const FORENSIC_CAP: usize = 32;

/// Schema tag on every [`ForensicBundle::to_json`] document.
pub const FORENSIC_SCHEMA: &str = "vermem-forensic/v1";

/// Configuration for a [`StreamVerifier`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Retention window in ops per address: once an address buffers more
    /// raw ops than this while still on the polynomial fast path, the
    /// buffer is retired. `None` retains everything (no replay ever
    /// needed, memory grows with the stream).
    pub window: Option<usize>,
    /// Worker shards (`0` = [`available_jobs`]). `1` runs inline on the
    /// ingesting thread — the deterministic baseline the differential
    /// tests compare against.
    pub jobs: usize,
    /// Whether the event interleaving is the machine's temporal commit
    /// order. Gates detection-event and latency recording (a proc-major v2
    /// file is a valid op multiset but its interleaving carries no timing,
    /// so monitor stalls there are not "detections").
    pub temporal: bool,
    /// The tiered verifier escalated addresses fall through to. Must not
    /// be [`Strategy::Sat`] (the SAT encoder needs a whole trace).
    pub verifier: VmcVerifier,
    /// Flight recorder: `Some` keeps a bounded per-shard ring of recent
    /// events and captures a [`ForensicBundle`] on every detection event
    /// (temporal streams only — detections are temporal-gated). `None`
    /// (the default) records nothing. Never changes verdicts, stats, or
    /// tiers; the ring's footprint is counted inside
    /// [`StreamMetrics::peak_retained_windows`].
    pub recorder: Option<RecorderConfig>,
    /// Ingest-path storage ablation switch (see [`HotPathConfig`]).
    pub hot_path: HotPathConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: None,
            jobs: 1,
            temporal: true,
            verifier: VmcVerifier::new(),
            recorder: None,
            hot_path: HotPathConfig::default(),
        }
    }
}

/// Ablation switch selecting the ingest-path storage strategy — the
/// streaming analogue of `legacy_memo_keys` in [`SearchConfig`]: both
/// strategies are first-class, run the same monitor code over different
/// representations (dense slab tables vs std `HashMap`s — reports are
/// bit-identical by construction), and exist side by side so the `e_hotpath` experiment
/// can measure one against the other on the same binary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotPathConfig {
    /// Run the pre-dense std-`HashMap` structures and per-event decode
    /// instead of the dense slab tables and block decode. Default `false`
    /// (dense).
    pub legacy_structures: bool,
}

/// Flight-recorder knobs (see [`StreamConfig::recorder`]).
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Capacity of the per-shard recent-event ring, and the per-process
    /// cap on retained window ops copied into a bundle. `0` disables the
    /// ring (bundles then carry certificates only).
    pub ring: usize,
    /// Search-state budget for the per-detection certificate solve and
    /// core minimization (`None` = unlimited). Detections fire mid-stream
    /// on the hot path, so the default keeps each capture cheap.
    pub core_budget: Option<u64>,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring: 256,
            core_budget: Some(20_000),
        }
    }
}

/// One event retained by the flight-recorder ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingEntry {
    /// Global stream sequence number of the event.
    pub seq: u64,
    /// The operation's reference (process, program-order index).
    pub op_ref: OpRef,
    /// The operation itself.
    pub op: Op,
}

/// A minimal incoherent core extracted from the retained window at
/// detection time, with refs mapped back to the original stream
/// coordinates.
#[derive(Clone, Debug)]
pub struct CoreCertificate {
    /// Kept operations, as references into the *original* stream.
    pub kept: Vec<OpRef>,
    /// The violation the core exhibits.
    pub violation: Violation,
}

/// The forensic record captured for one detection event: everything an
/// operator needs to reconstruct *why* the monitor flagged the stream,
/// without re-running it.
///
/// Bundles are diagnostics, not verdicts: capture reads the address state
/// and runs a *budget-bounded* certificate solve on a clone of the
/// retained ops, so enabling the recorder never perturbs the verdict,
/// [`SearchStats`], or [`TierStats`] of the run (the differential suites
/// prove this bit-identically).
#[derive(Clone, Debug)]
pub struct ForensicBundle {
    /// The detection event this bundle explains.
    pub violation: OnlineViolation,
    /// Obs-clock microseconds at which the offending op was observed.
    pub issued_us: u64,
    /// Obs-clock microseconds at which the violation became certain.
    pub detected_us: u64,
    /// The retained window at the violating address: per process, the
    /// most recent [`RecorderConfig::ring`] buffered ops (empty when the
    /// window had already been retired).
    pub window_ops: Vec<(OpRef, Op)>,
    /// The shard's recent-event ring at capture time (all addresses),
    /// oldest first.
    pub recent: Vec<RingEntry>,
    /// Which tier the budgeted certificate solve decided the retained
    /// window with (`None` when no ops were retained to solve).
    pub tier: Option<Tier>,
    /// The minimized incoherent core, when the retained window is itself
    /// provably incoherent within [`RecorderConfig::core_budget`].
    pub core: Option<CoreCertificate>,
}

impl ForensicBundle {
    /// Render the bundle as one JSON object — one line of the
    /// `--forensics` JSONL file (schema [`FORENSIC_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let v = &self.violation;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(FORENSIC_SCHEMA);
        w.key("addr").u64(u64::from(v.addr.0));
        w.key("proc").u64(u64::from(v.proc.0));
        w.key("value").u64(v.value.0);
        w.key("cause").string(match v.cause {
            OnlineCause::RmwMismatch => "rmw-mismatch",
            OnlineCause::WindowClosed => "window-closed",
            OnlineCause::EndOfStream => "end-of-stream",
        });
        w.key("issued_at").u64(v.issued_at);
        w.key("detected_at").u64(v.detected_at);
        w.key("issued_us").u64(self.issued_us);
        w.key("detected_us").u64(self.detected_us);
        w.key("latency_us")
            .u64(self.detected_us.saturating_sub(self.issued_us));
        w.key("window_ops").begin_array();
        for &(r, op) in &self.window_ops {
            w.begin_object();
            w.key("proc").u64(u64::from(r.proc.0));
            w.key("index").u64(u64::from(r.index));
            w.key("op").string(&op.to_string());
            w.end_object();
        }
        w.end_array();
        w.key("recent").begin_array();
        for e in &self.recent {
            w.begin_object();
            w.key("seq").u64(e.seq);
            w.key("proc").u64(u64::from(e.op_ref.proc.0));
            w.key("index").u64(u64::from(e.op_ref.index));
            w.key("op").string(&e.op.to_string());
            w.end_object();
        }
        w.end_array();
        match self.tier {
            Some(Tier::Frontline) => w.key("tier").string("frontline"),
            Some(Tier::Exact) => w.key("tier").string("exact"),
            None => w.key("tier").null(),
        };
        match &self.core {
            Some(core) => {
                w.key("core").begin_object();
                w.key("violation").string(&core.violation.to_string());
                w.key("kept").begin_array();
                for r in &core.kept {
                    w.begin_object();
                    w.key("proc").u64(u64::from(r.proc.0));
                    w.key("index").u64(u64::from(r.index));
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
            None => {
                w.key("core").null();
            }
        }
        w.end_object();
        w.finish()
    }
}

/// Build one forensic bundle from the address state at detection time.
///
/// `with_final` gates the declared final value into the certificate
/// solve: mid-stream the final constraint is not yet meaningful (the
/// stream is still running), so only end-of-stream captures apply it.
fn capture_bundle<T: Tables>(
    rec: &RecorderConfig,
    state: &AddrStream<T>,
    violation: OnlineViolation,
    issued_us: u64,
    detected_us: u64,
    recent: Vec<RingEntry>,
    with_final: bool,
) -> ForensicBundle {
    let mut window_ops: Vec<(OpRef, Op)> = Vec::new();
    for list in &state.buffer {
        let skip = list.len().saturating_sub(rec.ring);
        window_ops.extend(list[skip..].iter().copied());
    }
    window_ops.sort_by_key(|(r, _)| (r.proc.0, r.index));

    let (tier, core) = if state.buffer_ops == 0 {
        (None, None)
    } else {
        let final_value = if with_final { state.final_value } else { None };
        let probe = VmcVerifier {
            search: SearchConfig {
                max_states: rec.core_budget,
                ..SearchConfig::default()
            },
            ..VmcVerifier::new()
        };
        let ops = AddrOps::from_parts(
            violation.addr,
            state.initial,
            final_value,
            state.buffer.clone(),
        );
        let (verdict, _, tier) = probe.verify_ops_detached(&ops);
        let core = if matches!(verdict, Verdict::Incoherent(_)) {
            // Rebuild the retained window as a trace; every op is at the
            // violating address, so the minimizer's projected refs index
            // straight into `state.buffer[proc]`.
            let mut trace = Trace::from_histories(
                state
                    .buffer
                    .iter()
                    .map(|h| h.iter().map(|&(_, op)| op).collect::<ProcessHistory>()),
            );
            trace.set_initial(violation.addr, state.initial);
            if let Some(f) = final_value {
                trace.set_final(violation.addr, f);
            }
            minimize_incoherent_core(
                &trace,
                violation.addr,
                &ExplainConfig {
                    max_states: rec.core_budget,
                },
            )
            .map(|mc| CoreCertificate {
                kept: mc
                    .kept
                    .iter()
                    .map(|r| state.buffer[usize::from(r.proc.0)][r.index as usize].0)
                    .collect(),
                violation: mc.violation,
            })
        } else {
            None
        };
        (Some(tier), core)
    };

    ForensicBundle {
        violation,
        issued_us,
        detected_us,
        window_ops,
        recent,
        tier,
        core,
    }
}

/// The witness-free verdict of a streaming run.
///
/// Sealed addresses prove coherence without materializing a schedule, so —
/// unlike [`crate::ExecutionVerdict`] — the coherent arm carries no
/// witnesses. The failure arms are bit-identical to the batch engine's.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamVerdict {
    /// Every address admits a coherent schedule.
    Coherent,
    /// The first failing address (in ascending address order) with the
    /// same [`Violation`] the batch engine reports.
    Incoherent(Violation),
    /// The exact kernel exhausted its budget on `addr` (first such
    /// address in ascending order).
    Unknown {
        /// The address whose verification was inconclusive.
        addr: Addr,
    },
}

impl StreamVerdict {
    /// True if the stream verified coherent.
    pub fn is_coherent(&self) -> bool {
        matches!(self, StreamVerdict::Coherent)
    }

    /// True if this verdict agrees with a batch [`crate::ExecutionVerdict`]
    /// (modulo the witness schedules the streaming engine never builds).
    pub fn matches_batch(&self, batch: &crate::ExecutionVerdict) -> bool {
        match (self, batch) {
            (StreamVerdict::Coherent, crate::ExecutionVerdict::Coherent(_)) => true,
            (StreamVerdict::Incoherent(a), crate::ExecutionVerdict::Incoherent(b)) => a == b,
            (StreamVerdict::Unknown { addr }, crate::ExecutionVerdict::Unknown { addr: b }) => {
                addr == b
            }
            _ => false,
        }
    }
}

/// Memory/retirement accounting for a streaming run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamMetrics {
    /// The configured retention window.
    pub window: Option<usize>,
    /// Peak of `ceil(retained units / window)` summed per shard: the
    /// bounded-memory gate. Independent of stream *length* once steady
    /// state is reached (gated in `scripts/verify.sh`).
    pub peak_retained_windows: u64,
    /// Peak retained units (buffered ops + live slots + deferred reads).
    pub peak_retained_units: u64,
    /// Raw ops dropped by window retirement.
    pub retired_ops: u64,
    /// Encoded bytes those ops occupied (the retired-bytes counter).
    pub retired_bytes: u64,
    /// Committed-value slots retired below the global read frontier.
    pub retired_slots: u64,
    /// Addresses decided by their sealed summary alone (no exact solve,
    /// no raw ops at end of stream).
    pub sealed_addresses: usize,
    /// Addresses escalated to the exact tiered kernel.
    pub exact_addresses: usize,
    /// Escalated addresses whose ops had been retired and were
    /// re-materialized by the replay pass.
    pub replayed_addresses: usize,
}

/// Outcome of a streaming verification run.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// The deterministic verdict (bit-identical to batch; see module docs).
    pub verdict: StreamVerdict,
    /// Per-address [`SearchStats`] summed in ascending address order up to
    /// and including the reported failure — same contract as
    /// [`crate::ExecutionReport::stats`].
    pub stats: SearchStats,
    /// Per-tier accounting over the same deterministic address prefix.
    pub tiers: TierStats,
    /// Distinct addresses that carried operations.
    pub addresses: usize,
    /// Operation events consumed.
    pub events: u64,
    /// Worker count actually used.
    pub jobs: usize,
    /// Detection events (temporal streams only), sorted by detection
    /// order; capped at a fixed size.
    pub detections: Vec<OnlineViolation>,
    /// Issue→detect wall-clock gaps in microseconds, one per detection
    /// event observed (temporal streams only; uncapped ordering not
    /// meaningful — use [`StreamReport::p99_detect_latency_us`]).
    pub detect_latencies_us: Vec<u64>,
    /// Retirement/memory accounting.
    pub metrics: StreamMetrics,
    /// Flight-recorder bundles, one per captured detection event
    /// ([`StreamConfig::recorder`]; empty when the recorder is off).
    /// Sorted like `detections`, capped at a small fixed count.
    pub forensics: Vec<ForensicBundle>,
}

impl StreamReport {
    /// True if the stream verified coherent.
    pub fn is_coherent(&self) -> bool {
        self.verdict.is_coherent()
    }

    /// The 99th-percentile issue→detect latency, if any detections fired.
    pub fn p99_detect_latency_us(&self) -> Option<u64> {
        percentile(&self.detect_latencies_us, 99)
    }
}

std::thread_local! {
    /// Reusable scratch for [`percentile`]: the quickselect works on a
    /// copy, and per-stream reporting queries several percentiles over the
    /// same (large) latency array, so the copy's allocation is kept.
    static PERCENTILE_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The `p`-th percentile (nearest-rank) of `samples`, if non-empty.
///
/// O(n) via [`slice::select_nth_unstable`] on a reusable thread-local
/// scratch copy — equivalent to sorting and indexing `rank - 1`, without
/// the O(n log n) sort or a fresh allocation per query.
pub fn percentile(samples: &[u64], p: u64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let rank = ((samples.len() as u64 * p).div_ceil(100)).max(1) as usize;
    PERCENTILE_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.clear();
        scratch.extend_from_slice(samples);
        let (_, &mut v, _) = scratch.select_nth_unstable(rank - 1);
        Some(v)
    })
}

/// A deferred read waiting for its serving write to commit.
#[derive(Clone, Debug)]
struct PendingRead {
    proc: ProcId,
    value: Value,
    issued_at: u64,
    issued_us: u64,
}

/// Per-address streaming state: the greedy §5.2 monitor (summary), the
/// read-map class bits, and the raw-op retention buffer. Generic over the
/// [`Tables`] storage strategy — the monitor logic below is the single
/// source of truth for both the dense and the legacy configuration.
struct AddrStream<T: Tables> {
    initial: Value,
    final_value: Option<Value>,
    // --- summary: the greedy placement monitor (cf. `crate::online`) ---
    /// Committed writes so far; slot `s` (0-based over `0..=slots_len`)
    /// denotes "after `s` writes".
    slots_len: usize,
    /// Lowest slot still live; slots below were retired.
    live_from: usize,
    /// Values of the live slots `max(1, live_from)..=slots_len` (slot 0
    /// carries `initial` and has no entry here).
    live_values: VecDeque<Value>,
    /// Value of the most recent committed write.
    last_value: Option<Value>,
    /// The placement index, per-process cursors, deferred-read queues, and
    /// write counts — the four tables the storage strategy owns. The
    /// write-count table is O(distinct written values), the one
    /// per-address map retirement does not bound (disclosed in DESIGN.md).
    tables: T,
    pending_total: usize,
    /// Reusable scratch for the per-write deferred-read retry loop.
    retry_procs: Vec<u16>,
    // --- read-map class bits (exact, kept for the whole stream) ---
    rmw_seen: bool,
    dup_value: bool,
    wrote_initial: bool,
    /// The exact kernel must decide this address at end of stream.
    pinned: bool,
    /// The retention buffer was retired; escalation needs a replay pass.
    dropped: bool,
    // --- retention buffer ---
    /// Raw ops per process, in program order — exactly what
    /// [`AddrOps::from_parts`] needs to reproduce the batch index entry.
    buffer: Vec<Vec<(OpRef, Op)>>,
    buffer_ops: usize,
    buffer_bytes: u64,
    // --- accounting (cached for O(1) shard-level deltas) ---
    units: usize,
    windows: u64,
}

impl<T: Tables> AddrStream<T> {
    fn new(procs: usize, initial: Value, final_value: Option<Value>) -> AddrStream<T> {
        AddrStream {
            initial,
            final_value,
            slots_len: 0,
            live_from: 0,
            live_values: VecDeque::new(),
            last_value: None,
            tables: T::new(procs, initial),
            pending_total: 0,
            retry_procs: Vec::new(),
            rmw_seen: false,
            dup_value: false,
            wrote_initial: false,
            pinned: false,
            dropped: false,
            buffer: vec![Vec::new(); procs],
            buffer_ops: 0,
            buffer_bytes: 0,
            units: 0,
            windows: 0,
        }
    }

    /// Track the Figure 5.3 read-map class; exiting it pins the address.
    fn class_track(&mut self, op: &Op) {
        if op.is_rmw() {
            self.rmw_seen = true;
        }
        if let Some(v) = op.written_value() {
            if self.tables.bump_write(v) > 1 {
                self.dup_value = true;
            }
            if v == self.initial {
                self.wrote_initial = true;
            }
        }
        if self.rmw_seen || self.dup_value || self.wrote_initial {
            self.pinned = true;
        }
    }

    fn on_read(&mut self, seq: u64, proc: ProcId, value: Value, temporal: bool) {
        // The issue timestamp is only needed for latency accounting on
        // reads that actually defer — keep the clock off the hot path.
        let stamp = || if temporal { obs::now_us() } else { 0 };
        if !self.tables.pending(proc.0).is_empty() {
            // Preserve program order behind an already-deferred read.
            self.tables.pending_push(
                proc.0,
                PendingRead {
                    proc,
                    value,
                    issued_at: seq,
                    issued_us: stamp(),
                },
            );
            self.pending_total += 1;
            return;
        }
        let min = self.tables.cursor(proc.0).unwrap_or(0);
        match self.tables.place(self.slots_len, value, min) {
            Some(slot) => {
                self.tables.set_cursor(proc.0, slot);
            }
            None => {
                self.tables.pending_push(
                    proc.0,
                    PendingRead {
                        proc,
                        value,
                        issued_at: seq,
                        issued_us: stamp(),
                    },
                );
                self.pending_total += 1;
            }
        }
    }

    fn on_write(&mut self, seq: u64, addr: Addr, proc: ProcId, value: Value, sink: &mut Sink) {
        // The writer's own deferred reads' windows close now: they can
        // never be served, so the address escalates (and, on temporal
        // streams, the stall is reported as a detection).
        if !self.tables.pending(proc.0).is_empty() {
            let mut stale_queue = self.tables.pending_take(proc.0);
            for stale in stale_queue.drain(..) {
                self.pending_total -= 1;
                self.pinned = true;
                sink.report(
                    OnlineViolation {
                        detected_at: seq,
                        issued_at: stale.issued_at,
                        proc: stale.proc,
                        addr,
                        value: stale.value,
                        cause: OnlineCause::WindowClosed,
                    },
                    stale.issued_us,
                );
            }
            self.tables.pending_restore(proc.0, stale_queue);
        }

        // Commit the write as a new slot.
        let slot = self.slots_len + 1;
        self.slots_len = slot;
        self.live_values.push_back(value);
        self.tables.commit_slot(value, slot);
        self.last_value = Some(value);
        let cursor = self.tables.cursor(proc.0).unwrap_or(0).max(slot);
        self.tables.set_cursor(proc.0, cursor);

        // Retry deferred reads of every process, in program order, stopping
        // at the first that still cannot be placed. Processes are
        // independent here (each retry touches only its own cursor), so
        // the proc listing order cannot affect the outcome.
        let mut retry = std::mem::take(&mut self.retry_procs);
        retry.clear();
        self.tables.pending_procs(&mut retry);
        for &p in &retry {
            let mut min = self.tables.cursor(p).unwrap_or(0);
            let mut placed = 0;
            for pr in self.tables.pending(p) {
                match self.tables.place(self.slots_len, pr.value, min) {
                    Some(slot) => {
                        min = slot;
                        placed += 1;
                    }
                    None => break,
                }
            }
            if placed > 0 {
                self.tables.set_cursor(p, min);
                self.tables.pending_pop_front(p, placed);
                self.pending_total -= placed;
            }
        }
        self.retry_procs = retry;
    }

    fn monitor(&mut self, seq: u64, addr: Addr, proc: ProcId, op: Op, sink: &mut Sink) {
        match op {
            Op::Read { value, .. } => self.on_read(seq, proc, value, sink.temporal),
            Op::Write { value, .. } => self.on_write(seq, addr, proc, value, sink),
            Op::Rmw { read, write, .. } => {
                // The read component binds to the immediately preceding
                // committed value.
                let current = self.last_value.unwrap_or(self.initial);
                if current != read {
                    self.pinned = true;
                    sink.report(
                        OnlineViolation {
                            detected_at: seq,
                            issued_at: seq,
                            proc,
                            addr,
                            value: read,
                            cause: OnlineCause::RmwMismatch,
                        },
                        if sink.temporal { obs::now_us() } else { 0 },
                    );
                }
                self.on_write(seq, addr, proc, write, sink);
            }
        }
    }

    /// Apply window retirement; returns `(ops, bytes, slots)` retired.
    fn retire(&mut self, window: usize) -> (u64, u64, u64) {
        let mut retired = (0u64, 0u64, 0u64);
        // Raw ops: only while the address is still expected to seal —
        // pinned addresses keep their buffer so escalation can skip the
        // replay pass (unless it was already dropped).
        if !self.pinned && self.buffer_ops > window {
            retired.0 = self.buffer_ops as u64;
            retired.1 = self.buffer_bytes;
            for queue in &mut self.buffer {
                queue.clear();
            }
            self.buffer_ops = 0;
            self.buffer_bytes = 0;
            self.dropped = true;
        }
        // Committed slots: everything below every process's cursor can no
        // longer serve any read of a process this address has seen. A
        // process arriving later may still have wanted one — then its read
        // defers, the address pins, and the exact kernel (with replayed
        // ops) decides: slower, never wrong.
        if self.slots_len - self.live_from > window {
            let floor = self.tables.cursor_floor();
            while self.live_from < floor {
                if self.live_from == 0 {
                    self.tables.retire_slot(self.initial, 0);
                } else {
                    let value = self.live_values.pop_front().expect("live slot value");
                    self.tables.retire_slot(value, self.live_from);
                }
                self.live_from += 1;
                retired.2 += 1;
            }
        }
        retired
    }

    fn current_units(&self) -> usize {
        self.buffer_ops + (self.slots_len - self.live_from) + self.pending_total
    }

    /// The summary alone proves this address coherent (see module docs).
    fn sealed_clean(&self) -> bool {
        if self.pinned || self.pending_total > 0 {
            return false;
        }
        debug_assert!(!self.rmw_seen && !self.dup_value && !self.wrote_initial);
        match self.final_value {
            None => true,
            Some(f) => f == self.last_value.unwrap_or(self.initial),
        }
    }
}

/// Detection-event collector handed into the monitor.
struct Sink<'a> {
    temporal: bool,
    detections: &'a mut Vec<OnlineViolation>,
    latencies_us: &'a mut Vec<u64>,
    /// `(issued_us, detected_us)` per retained detection, index-aligned
    /// with `detections` — the flight recorder's timing source.
    meta: &'a mut Vec<(u64, u64)>,
}

impl Sink<'_> {
    fn report(&mut self, violation: OnlineViolation, issued_us: u64) {
        if !self.temporal {
            return;
        }
        let now = obs::now_us();
        if self.latencies_us.len() < LATENCY_CAP {
            self.latencies_us.push(now.saturating_sub(issued_us));
        }
        if self.detections.len() < DETECTION_CAP {
            self.detections.push(violation);
            self.meta.push((issued_us, now));
        }
    }
}

/// One routed operation event.
struct RoutedOp {
    addr: Addr,
    op_ref: OpRef,
    op: Op,
    bytes: u32,
    seq: u64,
    /// `(initial, final)` on the first event touching this address.
    meta: Option<(Value, Option<Value>)>,
}

/// A worker's world: the addresses it owns plus its accounting.
struct Shard<T: Tables> {
    window: Option<usize>,
    quantum: usize,
    temporal: bool,
    procs: usize,
    recorder: Option<RecorderConfig>,
    addrs: T::AddrMap,
    detections: Vec<OnlineViolation>,
    latencies_us: Vec<u64>,
    /// `(issued_us, detected_us)` aligned with `detections`.
    detect_meta: Vec<(u64, u64)>,
    /// Flight-recorder ring of the shard's most recent routed events.
    ring: VecDeque<RingEntry>,
    /// Captured forensic bundles (capped at [`FORENSIC_CAP`]).
    bundles: Vec<ForensicBundle>,
    /// Cached ring footprint for O(1) accounting deltas (the ring counts
    /// toward `cur_units`/`cur_windows` like a pseudo-address).
    ring_units: usize,
    ring_windows: u64,
    cur_units: u64,
    peak_units: u64,
    cur_windows: u64,
    peak_windows: u64,
    retired_ops: u64,
    retired_bytes: u64,
    retired_slots: u64,
}

impl<T: Tables> Shard<T> {
    fn new(
        window: Option<usize>,
        temporal: bool,
        procs: usize,
        recorder: Option<RecorderConfig>,
    ) -> Shard<T> {
        Shard {
            window,
            quantum: window.unwrap_or(UNBOUNDED_SLAB).max(1),
            temporal,
            procs,
            recorder,
            addrs: T::AddrMap::default(),
            detections: Vec::new(),
            latencies_us: Vec::new(),
            detect_meta: Vec::new(),
            ring: VecDeque::new(),
            bundles: Vec::new(),
            ring_units: 0,
            ring_windows: 0,
            cur_units: 0,
            peak_units: 0,
            cur_windows: 0,
            peak_windows: 0,
            retired_ops: 0,
            retired_bytes: 0,
            retired_slots: 0,
        }
    }

    fn apply(&mut self, event: RoutedOp) {
        if let Some(rec) = &self.recorder {
            if rec.ring > 0 {
                if self.ring.len() == rec.ring {
                    self.ring.pop_front();
                }
                self.ring.push_back(RingEntry {
                    seq: event.seq,
                    op_ref: event.op_ref,
                    op: event.op,
                });
            }
        }
        let detections_before = self.detections.len();

        let procs = self.procs;
        let state = self.addrs.get_or_insert_with(event.addr, || {
            let (initial, final_value) = event.meta.unwrap_or((Value::INITIAL, None));
            AddrStream::new(procs, initial, final_value)
        });

        state.class_track(&event.op);
        if !(state.pinned && state.dropped) {
            state.buffer[usize::from(event.op_ref.proc.0)].push((event.op_ref, event.op));
            state.buffer_ops += 1;
            state.buffer_bytes += u64::from(event.bytes);
        }

        let mut sink = Sink {
            temporal: self.temporal,
            detections: &mut self.detections,
            latencies_us: &mut self.latencies_us,
            meta: &mut self.detect_meta,
        };
        state.monitor(
            event.seq,
            event.addr,
            event.op_ref.proc,
            event.op,
            &mut sink,
        );

        if let Some(window) = self.window {
            let (ops, bytes, slots) = state.retire(window);
            if ops > 0 {
                self.retired_ops += ops;
                self.retired_bytes += bytes;
                obs::counter_add("stream.retired_ops", ops);
                obs::counter_add("stream.retired_bytes", bytes);
            }
            if slots > 0 {
                self.retired_slots += slots;
                obs::counter_add("stream.retired_slots", slots);
            }
        }

        // O(1) retained-footprint accounting via cached per-address values.
        let units = state.current_units();
        let windows = units.div_ceil(self.quantum) as u64;
        self.cur_units += units as u64;
        self.cur_units -= state.units as u64;
        self.cur_windows += windows;
        self.cur_windows -= state.windows;
        state.units = units;
        if state.windows != windows {
            state.windows = windows;
            obs::gauge_set("stream.retained_windows", self.cur_windows);
        }
        // The recorder ring counts toward the retained footprint exactly
        // like an address's retention buffer.
        if self.ring.len() != self.ring_units {
            let units = self.ring.len();
            let windows = (units as u64).div_ceil(self.quantum as u64);
            self.cur_units += units as u64;
            self.cur_units -= self.ring_units as u64;
            self.cur_windows += windows;
            self.cur_windows -= self.ring_windows;
            self.ring_units = units;
            self.ring_windows = windows;
        }
        self.peak_units = self.peak_units.max(self.cur_units);
        self.peak_windows = self.peak_windows.max(self.cur_windows);

        if self.recorder.is_some() && self.detections.len() > detections_before {
            self.capture(event.addr, detections_before);
        }
    }

    /// Capture forensic bundles for the detections `from..` (all raised by
    /// the event just applied, hence all at `addr`).
    fn capture(&mut self, addr: Addr, from: usize) {
        // `RecorderConfig` and `OnlineViolation` are `Copy`: capture takes
        // no clones of configuration or detections (the op payloads in the
        // bundle are the only owned data).
        let rec = self.recorder.expect("recorder on");
        let Some(state) = self.addrs.get(addr) else {
            return;
        };
        let recent: Vec<RingEntry> = self.ring.iter().copied().collect();
        let mut fresh = Vec::new();
        for i in from..self.detections.len() {
            if self.bundles.len() + fresh.len() >= FORENSIC_CAP {
                break;
            }
            let (issued_us, detected_us) = self.detect_meta.get(i).copied().unwrap_or((0, 0));
            fresh.push(capture_bundle(
                &rec,
                state,
                self.detections[i],
                issued_us,
                detected_us,
                recent.clone(),
                false,
            ));
        }
        self.bundles.extend(fresh);
    }
}

/// Everything frozen at end of input, awaiting (optional) replay and the
/// final reduction.
struct Ended<T: Tables> {
    merged: BTreeMap<Addr, AddrStream<T>>,
    detections: Vec<OnlineViolation>,
    latencies_us: Vec<u64>,
    forensics: Vec<ForensicBundle>,
    metrics: StreamMetrics,
    replay_set: BTreeSet<Addr>,
    replay_reader: ChunkReader,
    replay_store: BTreeMap<Addr, Vec<Vec<(OpRef, Op)>>>,
}

/// A shard lane: its queue sender, the router-side batch under
/// construction, and the worker handle.
struct Lane<T: Tables> {
    sender: SpscSender<Vec<RoutedOp>>,
    batch: Vec<RoutedOp>,
    handle: JoinHandle<Shard<T>>,
}

/// The sharded bounded-memory streaming verification engine.
///
/// Lifecycle: [`ingest`](StreamVerifier::ingest) chunks →
/// [`end_input`](StreamVerifier::end_input) → if
/// [`needs_replay`](StreamVerifier::needs_replay), re-feed the same bytes
/// through [`ingest_replay`](StreamVerifier::ingest_replay) →
/// [`finish`](StreamVerifier::finish). [`verify_stream_bytes`] wraps the
/// whole dance for in-memory streams.
///
/// Internally this is an enum over the two [`HotPathConfig`] storage
/// strategies; every method dispatches once and runs the shared generic
/// engine.
pub struct StreamVerifier {
    inner: EngineKind,
}

/// The two monomorphizations of the generic engine.
enum EngineKind {
    Dense(Engine<DenseTables>),
    Legacy(Engine<LegacyTables>),
}

/// Dispatch `$body` over whichever engine variant is live, binding `$e`.
macro_rules! with_engine {
    ($inner:expr, $e:ident => $body:expr) => {
        match $inner {
            EngineKind::Dense($e) => $body,
            EngineKind::Legacy($e) => $body,
        }
    };
}

impl StreamVerifier {
    /// A fresh engine. Panics if the configured strategy is
    /// [`Strategy::Sat`] — the SAT encoder needs a whole backing trace,
    /// which a stream never materializes.
    pub fn new(config: StreamConfig) -> StreamVerifier {
        assert!(
            config.verifier.strategy != Strategy::Sat,
            "Strategy::Sat needs a whole backing trace; the streaming engine \
             supports Auto and Backtracking"
        );
        let inner = if config.hot_path.legacy_structures {
            EngineKind::Legacy(Engine::new(config))
        } else {
            EngineKind::Dense(Engine::new(config))
        };
        StreamVerifier { inner }
    }

    /// Worker count in use (after resolving `jobs == 0`).
    pub fn jobs(&self) -> usize {
        with_engine!(&self.inner, e => e.jobs)
    }

    /// Operation events consumed so far.
    pub fn events(&self) -> u64 {
        with_engine!(&self.inner, e => e.seq)
    }

    /// Feed the next chunk of the binary stream (any chunking, including
    /// mid-record splits). Decodes and routes every complete event.
    pub fn ingest(&mut self, chunk: &[u8]) -> Result<(), DecodeError> {
        with_engine!(&mut self.inner, e => e.ingest(chunk))
    }

    /// Declare end of input: validates the stream ended on a record
    /// boundary, drains the shards, flushes still-deferred reads as
    /// end-of-stream detections, and computes which addresses need a
    /// replay pass.
    pub fn end_input(&mut self) -> Result<(), DecodeError> {
        with_engine!(&mut self.inner, e => e.end_input())
    }

    /// True if some escalated address had its retention buffer retired:
    /// the caller must re-feed the stream through
    /// [`ingest_replay`](StreamVerifier::ingest_replay) before
    /// [`finish`](StreamVerifier::finish).
    pub fn needs_replay(&self) -> bool {
        with_engine!(&self.inner, e => e.needs_replay())
    }

    /// The addresses whose raw ops must be re-materialized.
    pub fn replay_addrs(&self) -> Vec<Addr> {
        with_engine!(&self.inner, e => e.replay_addrs())
    }

    /// Second pass over the same stream bytes: re-collects the raw ops of
    /// replay addresses only (every other event is decoded and discarded).
    pub fn ingest_replay(&mut self, chunk: &[u8]) -> Result<(), DecodeError> {
        with_engine!(&mut self.inner, e => e.ingest_replay(chunk))
    }

    /// Run the final reduction and produce the report.
    ///
    /// Sealed addresses are decided by their summary; every other address
    /// is solved by the exact tiered kernel (fanned out over the
    /// work-stealing pool, reduced in ascending address order with the
    /// same first-failure determinism as [`crate::verify_execution_par`]).
    ///
    /// Panics if a replay was needed but not provided.
    pub fn finish(self) -> StreamReport {
        with_engine!(self.inner, e => e.finish())
    }
}

/// The generic engine body, monomorphized per storage strategy.
struct Engine<T: Tables> {
    window: Option<usize>,
    jobs: usize,
    temporal: bool,
    verifier: VmcVerifier,
    recorder: Option<RecorderConfig>,
    reader: ChunkReader,
    procs: Option<u16>,
    seq: u64,
    router: T::Router,
    inline: Option<Shard<T>>,
    lanes: Vec<Lane<T>>,
    ended: Option<Ended<T>>,
    /// Reusable block-decode buffer (dense path only).
    scratch_events: Vec<StreamEvent>,
}

impl<T: Tables> Engine<T> {
    fn new(config: StreamConfig) -> Engine<T> {
        let jobs = if config.jobs == 0 {
            available_jobs()
        } else {
            config.jobs
        }
        .max(1);
        Engine {
            window: config.window,
            jobs,
            temporal: config.temporal,
            verifier: config.verifier,
            recorder: config.recorder,
            reader: ChunkReader::new(),
            procs: None,
            seq: 0,
            router: T::Router::default(),
            inline: None,
            lanes: Vec::new(),
            ended: None,
            scratch_events: Vec::new(),
        }
    }

    fn ingest(&mut self, chunk: &[u8]) -> Result<(), DecodeError> {
        assert!(self.ended.is_none(), "ingest after end_input");
        self.reader.feed(chunk);
        if T::BATCHED {
            // Block decode: `next_batch` amortizes the per-event framing
            // cost; completed events are routed even when the batch ends in
            // a decode error (matching the per-event path, which routes
            // every event up to the failing record).
            let mut events = std::mem::take(&mut self.scratch_events);
            loop {
                events.clear();
                let decoded = self.reader.next_batch(&mut events, BATCH);
                for event in events.drain(..) {
                    self.route(event);
                }
                match decoded {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        self.scratch_events = events;
                        return Err(e);
                    }
                }
            }
            self.scratch_events = events;
        } else {
            loop {
                match self.reader.next() {
                    Ok(Some(event)) => self.route(event),
                    Ok(None) => break,
                    Err(DecodeError::NeedMoreBytes) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    fn route(&mut self, event: StreamEvent) {
        match event {
            StreamEvent::Begin { procs, .. } => {
                self.procs = Some(procs);
                if self.jobs == 1 {
                    self.inline = Some(Shard::new(
                        self.window,
                        self.temporal,
                        usize::from(procs),
                        self.recorder,
                    ));
                } else {
                    for i in 0..self.jobs {
                        let (tx, rx) = spsc_channel::<Vec<RoutedOp>>(QUEUE_CAP);
                        let (window, temporal) = (self.window, self.temporal);
                        let recorder = self.recorder;
                        let handle = std::thread::Builder::new()
                            .name(format!("vermem-stream-{i}"))
                            .spawn(move || {
                                let mut shard: Shard<T> =
                                    Shard::new(window, temporal, usize::from(procs), recorder);
                                while let Some(batch) = rx.recv() {
                                    for routed in batch {
                                        shard.apply(routed);
                                    }
                                }
                                shard
                            })
                            .expect("spawn stream shard");
                        self.lanes.push(Lane {
                            sender: tx,
                            batch: Vec::with_capacity(BATCH),
                            handle,
                        });
                    }
                }
            }
            StreamEvent::Init { addr, value } => {
                self.router.set_initial(addr, value);
            }
            StreamEvent::Final { addr, value } => {
                self.router.set_final(addr, value);
            }
            StreamEvent::Op { op_ref, op, bytes } => {
                let addr = op.addr();
                let meta = self.router.first_touch(addr);
                let routed = RoutedOp {
                    addr,
                    op_ref,
                    op,
                    bytes,
                    seq: self.seq,
                    meta,
                };
                self.seq += 1;
                if let Some(shard) = self.inline.as_mut() {
                    shard.apply(routed);
                } else {
                    let lane_count = self.lanes.len();
                    let lane = &mut self.lanes[shard_of(addr, lane_count)];
                    lane.batch.push(routed);
                    if lane.batch.len() >= BATCH {
                        let batch = std::mem::replace(&mut lane.batch, Vec::with_capacity(BATCH));
                        // A send error means the worker died; its panic
                        // resurfaces at join time in `end_input`.
                        let _ = lane.sender.send(batch);
                    }
                }
                if self.seq.is_multiple_of(4096) && obs::enabled() {
                    obs::gauge_set("stream.ingested_events", self.seq);
                }
            }
        }
    }

    fn end_input(&mut self) -> Result<(), DecodeError> {
        assert!(self.ended.is_none(), "end_input called twice");
        self.reader.finish()?;

        let mut shards: Vec<Shard<T>> = Vec::new();
        if let Some(shard) = self.inline.take() {
            shards.push(shard);
        }
        for lane in self.lanes.drain(..) {
            let Lane {
                sender,
                batch,
                handle,
            } = lane;
            if !batch.is_empty() {
                let _ = sender.send(batch);
            }
            sender.close();
            shards.push(handle.join().expect("stream shard panicked"));
        }

        let mut merged: BTreeMap<Addr, AddrStream<T>> = BTreeMap::new();
        let mut detections: Vec<OnlineViolation> = Vec::new();
        let mut latencies_us: Vec<u64> = Vec::new();
        let mut forensics: Vec<ForensicBundle> = Vec::new();
        let mut ring: Vec<RingEntry> = Vec::new();
        let mut metrics = StreamMetrics {
            window: self.window,
            ..StreamMetrics::default()
        };
        for mut shard in shards {
            metrics.peak_retained_windows += shard.peak_windows;
            metrics.peak_retained_units += shard.peak_units;
            metrics.retired_ops += shard.retired_ops;
            metrics.retired_bytes += shard.retired_bytes;
            metrics.retired_slots += shard.retired_slots;
            detections.extend(shard.detections);
            latencies_us.extend(shard.latencies_us);
            forensics.extend(shard.bundles);
            ring.extend(shard.ring);
            shard.addrs.drain_into(&mut merged);
        }
        ring.sort_by_key(|e| e.seq);

        // End of stream: any still-deferred read pins its address (and on
        // temporal streams surfaces as a detection, exactly like
        // `OnlineVerifier::finish`). Queues drain in ascending proc order,
        // so the capped forensic captures are deterministic regardless of
        // the storage strategy.
        let end = self.seq;
        let now = obs::now_us();
        let recorder = self.recorder;
        let mut stragglers: Vec<OnlineViolation> = Vec::new();
        let mut straggler_procs: Vec<u16> = Vec::new();
        for (&addr, state) in merged.iter_mut() {
            if state.pending_total == 0 {
                continue;
            }
            state.pinned = true;
            straggler_procs.clear();
            state.tables.pending_procs(&mut straggler_procs);
            let mut drained: Vec<PendingRead> = Vec::new();
            for &p in &straggler_procs {
                let mut queue = state.tables.pending_take(p);
                drained.append(&mut queue);
                state.tables.pending_restore(p, queue);
            }
            state.pending_total = 0;
            for pr in drained {
                if self.temporal && latencies_us.len() < LATENCY_CAP {
                    latencies_us.push(now.saturating_sub(pr.issued_us));
                }
                let violation = OnlineViolation {
                    detected_at: end,
                    issued_at: pr.issued_at,
                    proc: pr.proc,
                    addr,
                    value: pr.value,
                    cause: OnlineCause::EndOfStream,
                };
                if self.temporal {
                    if let Some(rec) = &recorder {
                        if forensics.len() < FORENSIC_CAP {
                            let recent = ring[ring.len().saturating_sub(rec.ring)..].to_vec();
                            forensics.push(capture_bundle(
                                rec,
                                state,
                                violation,
                                pr.issued_us,
                                now,
                                recent,
                                true,
                            ));
                        }
                    }
                }
                stragglers.push(violation);
            }
        }
        if self.temporal {
            stragglers.sort_by_key(|v| (v.detected_at, v.issued_at, v.addr.0, v.proc.0));
            detections.extend(stragglers);
        }
        detections.sort_by_key(|v| (v.detected_at, v.issued_at, v.addr.0, v.proc.0));
        detections.truncate(DETECTION_CAP);
        forensics.sort_by_key(|b| {
            let v = &b.violation;
            (v.detected_at, v.issued_at, v.addr.0, v.proc.0)
        });
        forensics.truncate(FORENSIC_CAP);

        let replay_set: BTreeSet<Addr> = merged
            .iter()
            .filter(|(_, s)| s.dropped && !s.sealed_clean())
            .map(|(&a, _)| a)
            .collect();

        self.ended = Some(Ended {
            merged,
            detections,
            latencies_us,
            forensics,
            metrics,
            replay_set,
            replay_reader: ChunkReader::new(),
            replay_store: BTreeMap::new(),
        });
        Ok(())
    }

    fn needs_replay(&self) -> bool {
        let ended = self.ended.as_ref().expect("call end_input first");
        !ended
            .replay_set
            .is_subset(&ended.replay_store.keys().copied().collect())
    }

    fn replay_addrs(&self) -> Vec<Addr> {
        let ended = self.ended.as_ref().expect("call end_input first");
        ended.replay_set.iter().copied().collect()
    }

    fn ingest_replay(&mut self, chunk: &[u8]) -> Result<(), DecodeError> {
        let procs = usize::from(self.procs.unwrap_or(0));
        let ended = self
            .ended
            .as_mut()
            .expect("call end_input before ingest_replay");
        ended.replay_reader.feed(chunk);
        loop {
            match ended.replay_reader.next() {
                Ok(Some(StreamEvent::Op { op_ref, op, .. })) => {
                    let addr = op.addr();
                    if ended.replay_set.contains(&addr) {
                        let lists = ended
                            .replay_store
                            .entry(addr)
                            .or_insert_with(|| vec![Vec::new(); procs]);
                        lists[usize::from(op_ref.proc.0)].push((op_ref, op));
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(DecodeError::NeedMoreBytes) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn finish(mut self) -> StreamReport {
        let mut ended = self.ended.take().expect("call end_input before finish");

        let mut span = vermem_util::span!("stream.finish");

        // Lay the addresses out in ascending order, materializing the op
        // sets of escalated addresses (from the retention buffer, or from
        // the replay store when the buffer was retired).
        enum Slot {
            Sealed,
            Exact(usize),
        }
        let mut layout: Vec<(Addr, Slot)> = Vec::with_capacity(ended.merged.len());
        let mut exact: Vec<AddrOps> = Vec::new();
        let mut metrics = ended.metrics;
        for (addr, mut state) in std::mem::take(&mut ended.merged) {
            if state.sealed_clean() {
                metrics.sealed_addresses += 1;
                layout.push((addr, Slot::Sealed));
                continue;
            }
            let lists = if !state.dropped {
                std::mem::take(&mut state.buffer)
            } else {
                metrics.replayed_addresses += 1;
                ended.replay_store.remove(&addr).unwrap_or_else(|| {
                    panic!(
                        "address {addr:?} escalated after its window was retired; \
                         re-feed the stream via ingest_replay before finish"
                    )
                })
            };
            let ops = AddrOps::from_parts(addr, state.initial, state.final_value, lists);
            layout.push((addr, Slot::Exact(exact.len())));
            exact.push(ops);
        }
        metrics.exact_addresses = exact.len();

        if span.is_recording() {
            span.arg("addresses", layout.len() as u64);
            span.arg("sealed", metrics.sealed_addresses as u64);
            span.arg("exact", exact.len() as u64);
        }

        // Fan the escalated addresses out, then reduce in address order —
        // the same determinism dance as `verify_execution_par`.
        let verifier = &self.verifier;
        let cancel = CancelToken::new();
        let mut results = scoped_map(self.jobs, exact.len(), &cancel, |i| {
            let out = verifier.verify_ops_detached(&exact[i]);
            if !matches!(out.0, Verdict::Coherent(_)) {
                cancel.cancel();
            }
            out
        });

        let mut stats = SearchStats::default();
        let mut tiers = TierStats::default();
        let mut verdict = StreamVerdict::Coherent;
        for (addr, slot) in layout.iter() {
            match slot {
                Slot::Sealed => tiers.record(Tier::Frontline),
                Slot::Exact(i) => {
                    let (v, s, tier) = results[*i]
                        .take()
                        .unwrap_or_else(|| verifier.verify_ops_detached(&exact[*i]));
                    stats.absorb(&s);
                    tiers.record(tier);
                    match v {
                        Verdict::Coherent(_) => {}
                        Verdict::Incoherent(violation) => {
                            verdict = StreamVerdict::Incoherent(violation);
                            break;
                        }
                        Verdict::Unknown => {
                            verdict = StreamVerdict::Unknown { addr: *addr };
                            break;
                        }
                    }
                }
            }
        }

        StreamReport {
            verdict,
            stats,
            tiers,
            addresses: layout.len(),
            events: self.seq,
            jobs: self.jobs,
            detections: ended.detections,
            detect_latencies_us: ended.latencies_us,
            metrics,
            forensics: ended.forensics,
        }
    }
}

/// Deterministic address→shard assignment (Fibonacci-hash the address).
fn shard_of(addr: Addr, shards: usize) -> usize {
    let h = u64::from(addr.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// One-shot convenience: stream `bytes` through a [`StreamVerifier`],
/// running the replay pass automatically when retirement requires it.
pub fn verify_stream_bytes(
    bytes: &[u8],
    config: StreamConfig,
) -> Result<StreamReport, DecodeError> {
    let mut engine = StreamVerifier::new(config);
    engine.ingest(bytes)?;
    engine.end_input()?;
    if engine.needs_replay() {
        engine.ingest_replay(bytes)?;
    }
    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_execution_par, ExecutionVerdict};
    use vermem_trace::binary::{encode_event_stream, encode_trace};
    use vermem_trace::{Trace, TraceBuilder};

    fn config(window: Option<usize>, jobs: usize, temporal: bool) -> StreamConfig {
        StreamConfig {
            window,
            jobs,
            temporal,
            verifier: VmcVerifier::new(),
            recorder: None,
            hot_path: HotPathConfig::default(),
        }
    }

    fn legacy(window: Option<usize>, jobs: usize, temporal: bool) -> StreamConfig {
        StreamConfig {
            hot_path: HotPathConfig {
                legacy_structures: true,
            },
            ..config(window, jobs, temporal)
        }
    }

    fn recording(window: Option<usize>, jobs: usize, temporal: bool) -> StreamConfig {
        StreamConfig {
            recorder: Some(RecorderConfig::default()),
            ..config(window, jobs, temporal)
        }
    }

    /// Batch-vs-stream parity on a v2 (proc-major) encoding of `trace`.
    fn assert_parity(trace: &Trace, window: Option<usize>, jobs: usize, tag: &str) {
        let bytes = encode_trace(trace);
        let batch = verify_execution_par(trace, &VmcVerifier::new(), 1);
        let report = verify_stream_bytes(&bytes, config(window, jobs, false)).expect("decode");
        assert!(
            report.verdict.matches_batch(&batch.verdict),
            "{tag}: stream {:?} vs batch {:?}",
            report.verdict,
            batch.verdict
        );
        assert_eq!(report.stats, batch.stats, "{tag}: stats");
        assert_eq!(report.tiers, batch.tiers, "{tag}: tiers");
        assert_eq!(report.addresses, batch.addresses, "{tag}: addresses");
    }

    fn gen_trace(seed: u64) -> Trace {
        let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
            procs: 4,
            total_ops: 160,
            addrs: 7,
            seed,
            ..Default::default()
        });
        t
    }

    #[test]
    fn sealed_stream_is_coherent_with_frontline_tier() {
        // Unique written values, reads in commit order: every address
        // seals; no exact solve, no stats, all frontline.
        let mut events = Vec::new();
        for a in 0..4u32 {
            events.push((ProcId(0), Op::write(a, u64::from(a) + 1)));
            events.push((ProcId(1), Op::read(a, u64::from(a) + 1)));
        }
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, config(Some(2), 1, true)).expect("decode");
        assert!(report.is_coherent());
        assert_eq!(report.addresses, 4);
        assert_eq!(report.metrics.sealed_addresses, 4);
        assert_eq!(report.metrics.exact_addresses, 0);
        assert_eq!(report.stats, SearchStats::default());
        assert_eq!(report.tiers.frontline_decided, 4);
        assert_eq!(report.tiers.escalated, 0);
        assert!(report.detections.is_empty());
    }

    #[test]
    fn parity_on_generated_traces_across_windows_and_jobs() {
        for seed in 0..6u64 {
            let t = gen_trace(seed);
            for window in [Some(4), Some(64), None] {
                for jobs in [1, 2] {
                    assert_parity(
                        &t,
                        window,
                        jobs,
                        &format!("seed {seed} w {window:?} j {jobs}"),
                    );
                }
            }
        }
    }

    #[test]
    fn first_violation_is_batch_identical() {
        // Two independent violations (addresses 3 and 7): the stream must
        // report address 3's violation, like the batch engine.
        let t = TraceBuilder::new()
            .proc([
                Op::write(3u32, 1u64),
                Op::write(7u32, 1u64),
                Op::write(5u32, 2u64),
            ])
            .proc([
                Op::read(7u32, 9u64),
                Op::read(3u32, 8u64),
                Op::read(5u32, 2u64),
            ])
            .build();
        let batch = verify_execution_par(&t, &VmcVerifier::new(), 1);
        let violation = match &batch.verdict {
            ExecutionVerdict::Incoherent(v) => v.clone(),
            other => panic!("expected incoherent, got {other:?}"),
        };
        for jobs in [1, 2, 8] {
            let report =
                verify_stream_bytes(&encode_trace(&t), config(Some(1), jobs, false)).expect("ok");
            assert_eq!(
                report.verdict,
                StreamVerdict::Incoherent(violation.clone()),
                "jobs {jobs}"
            );
            assert_eq!(report.stats, batch.stats, "jobs {jobs}");
            assert_eq!(report.tiers, batch.tiers, "jobs {jobs}");
        }
    }

    #[test]
    fn report_is_window_and_jobs_invariant() {
        let t = gen_trace(42);
        let bytes = encode_trace(&t);
        let baseline = verify_stream_bytes(&bytes, config(None, 1, false)).expect("ok");
        for window in [Some(1), Some(2), Some(16), None] {
            for jobs in [1, 2, 8] {
                let report = verify_stream_bytes(&bytes, config(window, jobs, false)).expect("ok");
                assert_eq!(report.verdict, baseline.verdict, "w {window:?} j {jobs}");
                assert_eq!(report.stats, baseline.stats, "w {window:?} j {jobs}");
                assert_eq!(report.tiers, baseline.tiers, "w {window:?} j {jobs}");
            }
        }
    }

    /// A long sealing stream: one writer of unique values, one reader in
    /// lockstep, `addrs` addresses round-robin.
    fn sealing_stream(addrs: u32, rounds: u64) -> Vec<u8> {
        let mut events = Vec::new();
        for i in 0..rounds {
            let a = (i % u64::from(addrs)) as u32;
            events.push((ProcId(0), Op::write(a, i + 1)));
            events.push((ProcId(1), Op::read(a, i + 1)));
        }
        encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events)
    }

    #[test]
    fn retained_memory_is_independent_of_stream_length() {
        let short = verify_stream_bytes(&sealing_stream(3, 2_000), config(Some(16), 1, true))
            .expect("decode");
        let long = verify_stream_bytes(&sealing_stream(3, 20_000), config(Some(16), 1, true))
            .expect("decode");
        assert!(short.is_coherent() && long.is_coherent());
        assert_eq!(
            short.metrics.peak_retained_windows, long.metrics.peak_retained_windows,
            "peak retained windows must not grow with stream length"
        );
        assert!(long.metrics.retired_ops > short.metrics.retired_ops);
        assert!(long.metrics.retired_bytes > short.metrics.retired_bytes);
        assert!(long.metrics.retired_slots > short.metrics.retired_slots);
        assert_eq!(long.metrics.sealed_addresses, 3);
    }

    #[test]
    fn replay_rematerializes_retired_escalations() {
        // Address 0 seals; address 1 writes a duplicate value *after* a
        // long unique-value prefix has been retired, so its exact solve
        // needs the replay pass.
        let mut events = Vec::new();
        for i in 0..200u64 {
            events.push((ProcId(0), Op::write(0u32, i + 1)));
            events.push((ProcId(1), Op::read(0u32, i + 1)));
            events.push((ProcId(0), Op::write(1u32, i + 1000)));
        }
        events.push((ProcId(0), Op::write(1u32, 1000u64))); // duplicate of round 0
        events.push((ProcId(1), Op::read(1u32, 1000u64)));
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);

        let mut engine = StreamVerifier::new(config(Some(8), 1, true));
        engine.ingest(&bytes).expect("decode");
        engine.end_input().expect("clean end");
        assert!(engine.needs_replay());
        assert_eq!(engine.replay_addrs(), vec![Addr(1)]);
        engine.ingest_replay(&bytes).expect("replay decode");
        assert!(!engine.needs_replay());
        let report = engine.finish();
        assert!(report.is_coherent(), "verdict {:?}", report.verdict);
        assert_eq!(report.metrics.sealed_addresses, 1);
        assert_eq!(report.metrics.exact_addresses, 1);
        assert_eq!(report.metrics.replayed_addresses, 1);
        assert!(report.metrics.retired_ops > 0);
    }

    #[test]
    fn chunked_ingest_matches_one_shot() {
        let t = gen_trace(7);
        let bytes = encode_trace(&t);
        let oneshot = verify_stream_bytes(&bytes, config(Some(8), 1, false)).expect("ok");
        for chunk in [1usize, 3, 17, 1024] {
            let mut engine = StreamVerifier::new(config(Some(8), 1, false));
            for piece in bytes.chunks(chunk) {
                engine.ingest(piece).expect("decode");
            }
            engine.end_input().expect("clean end");
            if engine.needs_replay() {
                for piece in bytes.chunks(chunk) {
                    engine.ingest_replay(piece).expect("replay decode");
                }
            }
            let report = engine.finish();
            assert_eq!(report.verdict, oneshot.verdict, "chunk {chunk}");
            assert_eq!(report.stats, oneshot.stats, "chunk {chunk}");
            assert_eq!(report.tiers, oneshot.tiers, "chunk {chunk}");
        }
    }

    #[test]
    fn temporal_stream_reports_detections_with_latency() {
        // P1 defers a read of a never-written value, then commits its own
        // write: the window closes — a detection — and the address
        // escalates to the exact kernel, which confirms the violation.
        let events = vec![
            (ProcId(0), Op::w(1u64)),
            (ProcId(1), Op::r(9u64)),
            (ProcId(1), Op::w(2u64)),
        ];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, config(None, 1, true)).expect("decode");
        assert!(!report.is_coherent());
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].cause, OnlineCause::WindowClosed);
        assert_eq!(report.detections[0].detected_at, 2);
        assert_eq!(report.detections[0].issued_at, 1);
        assert_eq!(report.detect_latencies_us.len(), 1);
        assert!(report.p99_detect_latency_us().is_some());
    }

    #[test]
    fn non_temporal_stream_suppresses_detections_but_not_verdicts() {
        let events = vec![
            (ProcId(0), Op::w(1u64)),
            (ProcId(1), Op::r(9u64)),
            (ProcId(1), Op::w(2u64)),
        ];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, config(None, 1, false)).expect("decode");
        assert!(!report.is_coherent());
        assert!(report.detections.is_empty());
        assert!(report.detect_latencies_us.is_empty());
    }

    #[test]
    fn rmw_streams_escalate_and_match_batch() {
        // A coherent RMW increment chain: never sealable (RMW pins), so it
        // exercises the exact fallthrough.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(2u64, 3u64)])
            .proc([Op::rw(1u64, 2u64), Op::rw(3u64, 4u64)])
            .build();
        assert_parity(&t, Some(1), 1, "rmw chain");
        let report = verify_stream_bytes(&encode_trace(&t), config(Some(1), 1, false)).expect("ok");
        assert_eq!(report.metrics.sealed_addresses, 0);
        assert_eq!(report.metrics.exact_addresses, 1);
    }

    #[test]
    fn initial_and_final_values_are_honored() {
        let mut initials = BTreeMap::new();
        initials.insert(Addr(0), Value(5));
        let mut finals = BTreeMap::new();
        finals.insert(Addr(0), Value(7));
        let events = vec![(ProcId(0), Op::r(5u64)), (ProcId(0), Op::w(7u64))];
        let bytes = encode_event_stream(1, &initials, &finals, &events);
        let report = verify_stream_bytes(&bytes, config(None, 1, true)).expect("decode");
        assert!(report.is_coherent());
        assert_eq!(report.metrics.sealed_addresses, 1);

        // Final mismatch: the summary refuses to seal and the exact kernel
        // rules.
        let mut finals = BTreeMap::new();
        finals.insert(Addr(0), Value(9));
        let bytes = encode_event_stream(1, &initials, &finals, &events);
        let report = verify_stream_bytes(&bytes, config(None, 1, true)).expect("decode");
        assert!(!report.is_coherent());
        assert_eq!(report.metrics.sealed_addresses, 0);
    }

    #[test]
    #[should_panic(expected = "Strategy::Sat")]
    fn sat_strategy_is_rejected() {
        let _ = StreamVerifier::new(StreamConfig {
            verifier: VmcVerifier {
                strategy: Strategy::Sat,
                ..VmcVerifier::new()
            },
            ..StreamConfig::default()
        });
    }

    #[test]
    fn recorder_changes_no_verdict_stats_or_tiers() {
        for seed in [3u64, 42] {
            let t = gen_trace(seed);
            let bytes = encode_trace(&t);
            for jobs in [1, 2, 8] {
                let off = verify_stream_bytes(&bytes, config(Some(8), jobs, true)).expect("ok");
                let on = verify_stream_bytes(&bytes, recording(Some(8), jobs, true)).expect("ok");
                assert_eq!(on.verdict, off.verdict, "seed {seed} jobs {jobs}");
                assert_eq!(on.stats, off.stats, "seed {seed} jobs {jobs}");
                assert_eq!(on.tiers, off.tiers, "seed {seed} jobs {jobs}");
                assert_eq!(on.addresses, off.addresses, "seed {seed} jobs {jobs}");
            }
        }
    }

    #[test]
    fn forensic_bundle_captures_window_core_and_timing() {
        // Same shape as `temporal_stream_reports_detections_with_latency`,
        // now with the flight recorder on: one WindowClosed detection, one
        // bundle with the retained ops, the ring, and a minimized core.
        let events = vec![
            (ProcId(0), Op::w(1u64)),
            (ProcId(1), Op::r(9u64)),
            (ProcId(1), Op::w(2u64)),
        ];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, recording(None, 1, true)).expect("decode");
        assert!(!report.is_coherent());
        assert_eq!(report.forensics.len(), 1);
        let b = &report.forensics[0];
        assert_eq!(b.violation, report.detections[0]);
        assert_eq!(b.violation.cause, OnlineCause::WindowClosed);
        assert!(b.detected_us >= b.issued_us);
        assert_eq!(b.recent.len(), 3, "whole stream fits the ring");
        assert_eq!(b.window_ops.len(), 3);
        assert_eq!(b.tier, Some(Tier::Frontline), "R9 is unservable on sight");
        let core = b.core.as_ref().expect("retained window is incoherent");
        assert!(!core.kept.is_empty());
        // Kept refs are in original stream coordinates: each one names a
        // retained window op.
        for r in &core.kept {
            assert!(b.window_ops.iter().any(|(wr, _)| wr == r), "{r:?}");
        }

        let parsed = vermem_util::json::parse_json(&b.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some(FORENSIC_SCHEMA)
        );
        assert_eq!(
            parsed.get("cause").and_then(|s| s.as_str()),
            Some("window-closed")
        );
        assert_eq!(
            parsed.get("tier").and_then(|s| s.as_str()),
            Some("frontline")
        );
        assert!(parsed
            .get("core")
            .and_then(|c| c.get("kept"))
            .and_then(|k| k.as_arr())
            .is_some_and(|k| !k.is_empty()));
    }

    #[test]
    fn end_of_stream_straggler_gets_a_bundle() {
        let events = vec![(ProcId(0), Op::w(1u64)), (ProcId(1), Op::r(9u64))];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, recording(None, 1, true)).expect("decode");
        assert!(!report.is_coherent());
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].cause, OnlineCause::EndOfStream);
        assert_eq!(report.forensics.len(), 1);
        let b = &report.forensics[0];
        assert_eq!(b.violation, report.detections[0]);
        assert!(b.core.is_some());
    }

    #[test]
    fn non_temporal_recorder_captures_nothing() {
        let events = vec![
            (ProcId(0), Op::w(1u64)),
            (ProcId(1), Op::r(9u64)),
            (ProcId(1), Op::w(2u64)),
        ];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        let report = verify_stream_bytes(&bytes, recording(None, 1, false)).expect("decode");
        assert!(!report.is_coherent());
        assert!(report.forensics.is_empty());
    }

    #[test]
    fn recorder_ring_is_counted_and_stays_bounded() {
        let short = verify_stream_bytes(&sealing_stream(3, 2_000), recording(Some(16), 1, true))
            .expect("decode");
        let long = verify_stream_bytes(&sealing_stream(3, 20_000), recording(Some(16), 1, true))
            .expect("decode");
        assert!(short.is_coherent() && long.is_coherent());
        assert_eq!(
            short.metrics.peak_retained_windows, long.metrics.peak_retained_windows,
            "peak retained windows must not grow with stream length, ring included"
        );
        let off = verify_stream_bytes(&sealing_stream(3, 2_000), config(Some(16), 1, true))
            .expect("decode");
        assert!(
            short.metrics.peak_retained_windows > off.metrics.peak_retained_windows,
            "the forensic ring must be counted inside the bounded-memory contract \
             (recorder on {} vs off {})",
            short.metrics.peak_retained_windows,
            off.metrics.peak_retained_windows
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 99), None);
        assert_eq!(percentile(&[7], 99), Some(7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 99), Some(99));
        assert_eq!(percentile(&v, 50), Some(50));
    }

    /// Dense and legacy storage must produce the same report, field by
    /// field, modulo wall-clock microseconds (latencies and capture
    /// timestamps are obs-clock readings, so only their shapes compare).
    fn assert_dense_legacy_identical(
        bytes: &[u8],
        cfg_d: StreamConfig,
        cfg_l: StreamConfig,
        tag: &str,
    ) {
        let d = verify_stream_bytes(bytes, cfg_d).expect("dense decodes");
        let l = verify_stream_bytes(bytes, cfg_l).expect("legacy decodes");
        assert_eq!(d.verdict, l.verdict, "{tag}: verdict");
        assert_eq!(d.stats, l.stats, "{tag}: stats");
        assert_eq!(d.tiers, l.tiers, "{tag}: tiers");
        assert_eq!(d.addresses, l.addresses, "{tag}: addresses");
        assert_eq!(d.events, l.events, "{tag}: events");
        assert_eq!(d.detections, l.detections, "{tag}: detections");
        assert_eq!(d.metrics, l.metrics, "{tag}: metrics");
        assert_eq!(
            d.detect_latencies_us.len(),
            l.detect_latencies_us.len(),
            "{tag}: latency count"
        );
        assert_eq!(d.forensics.len(), l.forensics.len(), "{tag}: bundle count");
        for (bd, bl) in d.forensics.iter().zip(&l.forensics) {
            assert_eq!(bd.violation, bl.violation, "{tag}: bundle violation");
            assert_eq!(bd.window_ops, bl.window_ops, "{tag}: bundle window ops");
            assert_eq!(bd.tier, bl.tier, "{tag}: bundle tier");
        }
    }

    #[test]
    fn dense_and_legacy_storage_agree_on_coherent_traces() {
        for seed in [11, 12, 13] {
            let bytes = encode_trace(&gen_trace(seed));
            for jobs in [1, 2, 8] {
                for window in [Some(16), Some(256), None] {
                    assert_dense_legacy_identical(
                        &bytes,
                        config(window, jobs, false),
                        legacy(window, jobs, false),
                        &format!("seed {seed} jobs {jobs} window {window:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn dense_and_legacy_storage_agree_on_violations_and_forensics() {
        // A stream with a read of a never-written value: end-of-stream
        // detections, forensics, and the exact escalation all engage.
        let events = vec![
            (ProcId(0), Op::w(1u64)),
            (ProcId(1), Op::r(9u64)),
            (ProcId(1), Op::w(2u64)),
            (ProcId(0), Op::r(2u64)),
        ];
        let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);
        for jobs in [1, 2, 8] {
            assert_dense_legacy_identical(
                &bytes,
                recording(None, jobs, true),
                StreamConfig {
                    hot_path: HotPathConfig {
                        legacy_structures: true,
                    },
                    ..recording(None, jobs, true)
                },
                &format!("violating stream jobs {jobs}"),
            );
        }
    }

    #[test]
    fn dense_and_legacy_storage_agree_across_retirement_and_replay() {
        // A long sealing stream with a tight window exercises retirement;
        // verify_stream_bytes runs the replay pass when needed.
        let bytes = sealing_stream(3, 2_000);
        for jobs in [1, 2, 8] {
            assert_dense_legacy_identical(
                &bytes,
                config(Some(16), jobs, true),
                legacy(Some(16), jobs, true),
                &format!("sealing stream jobs {jobs}"),
            );
        }
    }
}
