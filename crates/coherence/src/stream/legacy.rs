//! The pre-dense std-`HashMap` storage strategy, kept as the ablation
//! baseline behind [`super::HotPathConfig::legacy_structures`].
//!
//! This is a faithful re-homing of the structures the streaming engine
//! shipped with before the dense-slab rework: SipHash maps keyed by
//! `Value`/`Addr`/proc id, a heap-allocated `VecDeque` per written value,
//! and one `ChunkReader::next` call per event. It exists so the
//! `e_hotpath` experiment can measure the dense path against the real
//! predecessor on the same binary — and so the differential suites can
//! assert the two strategies produce bit-identical reports.
//!
//! This module is the *only* part of the stream engine allowed to name
//! `std::collections::HashMap` (enforced by a grep gate in
//! `scripts/verify.sh`).

use super::tables::{AddrMap, Router, Tables};
use super::{AddrStream, PendingRead};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use vermem_trace::{Addr, Value};

/// The pre-dense per-address tables: std `HashMap`s all the way down.
pub(crate) struct LegacyTables {
    /// For each value: the sorted live slots at which it is current.
    value_slots: HashMap<Value, VecDeque<usize>>,
    /// Per-process placement cursor.
    min_slot: HashMap<u16, usize>,
    /// Deferred reads, per process, in program order.
    deferred: HashMap<u16, Vec<PendingRead>>,
    /// Times each value was written.
    write_counts: HashMap<Value, u32>,
}

impl Tables for LegacyTables {
    type Router = LegacyRouter;
    type AddrMap = LegacyAddrMap<LegacyTables>;
    const BATCHED: bool = false;

    fn new(_procs: usize, initial: Value) -> Self {
        let mut value_slots = HashMap::new();
        // Slot 0 carries the initial value.
        value_slots.insert(initial, VecDeque::from([0usize]));
        LegacyTables {
            value_slots,
            min_slot: HashMap::new(),
            deferred: HashMap::new(),
            write_counts: HashMap::new(),
        }
    }

    fn place(&self, max_slot: usize, value: Value, min: usize) -> Option<usize> {
        let slots = self.value_slots.get(&value)?;
        let idx = slots.partition_point(|&s| s < min);
        slots.get(idx).copied().filter(|&s| s <= max_slot)
    }

    fn commit_slot(&mut self, value: Value, slot: usize) {
        self.value_slots.entry(value).or_default().push_back(slot);
    }

    fn retire_slot(&mut self, value: Value, slot: usize) {
        if let Some(slots) = self.value_slots.get_mut(&value) {
            debug_assert_eq!(slots.front().copied(), Some(slot));
            slots.pop_front();
            if slots.is_empty() {
                self.value_slots.remove(&value);
            }
        }
    }

    fn cursor(&self, proc: u16) -> Option<usize> {
        self.min_slot.get(&proc).copied()
    }

    fn set_cursor(&mut self, proc: u16, slot: usize) {
        self.min_slot.insert(proc, slot);
    }

    fn cursor_floor(&self) -> usize {
        self.min_slot.values().copied().min().unwrap_or(0)
    }

    fn pending(&self, proc: u16) -> &[PendingRead] {
        self.deferred.get(&proc).map(Vec::as_slice).unwrap_or(&[])
    }

    fn pending_push(&mut self, proc: u16, pr: PendingRead) {
        self.deferred.entry(proc).or_default().push(pr);
    }

    fn pending_pop_front(&mut self, proc: u16, n: usize) {
        self.deferred
            .get_mut(&proc)
            .expect("queue exists")
            .drain(..n);
    }

    fn pending_take(&mut self, proc: u16) -> Vec<PendingRead> {
        self.deferred
            .get_mut(&proc)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    fn pending_restore(&mut self, proc: u16, queue: Vec<PendingRead>) {
        self.deferred.insert(proc, queue);
    }

    fn pending_procs(&self, out: &mut Vec<u16>) {
        let start = out.len();
        out.extend(
            self.deferred
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(&p, _)| p),
        );
        out[start..].sort_unstable();
    }

    fn bump_write(&mut self, value: Value) -> u32 {
        let count = self.write_counts.entry(value).or_insert(0);
        *count += 1;
        *count
    }
}

/// Router tables as shipped pre-dense: SipHash map/set per event.
#[derive(Default)]
pub(crate) struct LegacyRouter {
    initials: HashMap<Addr, Value>,
    finals: HashMap<Addr, Value>,
    seen: HashSet<Addr>,
}

impl Router for LegacyRouter {
    fn set_initial(&mut self, addr: Addr, value: Value) {
        self.initials.insert(addr, value);
    }

    fn set_final(&mut self, addr: Addr, value: Value) {
        self.finals.insert(addr, value);
    }

    fn first_touch(&mut self, addr: Addr) -> Option<(Value, Option<Value>)> {
        if !self.seen.insert(addr) {
            return None;
        }
        Some((
            self.initials.get(&addr).copied().unwrap_or(Value::INITIAL),
            self.finals.get(&addr).copied(),
        ))
    }
}

/// Per-shard address table on std `HashMap`.
pub(crate) struct LegacyAddrMap<T: Tables>(HashMap<Addr, AddrStream<T>>);

impl<T: Tables> Default for LegacyAddrMap<T> {
    fn default() -> Self {
        LegacyAddrMap(HashMap::new())
    }
}

impl<T: Tables> AddrMap<T> for LegacyAddrMap<T> {
    fn get(&self, addr: Addr) -> Option<&AddrStream<T>> {
        self.0.get(&addr)
    }

    fn get_or_insert_with(
        &mut self,
        addr: Addr,
        make: impl FnOnce() -> AddrStream<T>,
    ) -> &mut AddrStream<T> {
        self.0.entry(addr).or_insert_with(make)
    }

    fn drain_into(&mut self, out: &mut BTreeMap<Addr, AddrStream<T>>) {
        out.extend(self.0.drain());
    }
}
