//! Fast paths for all-RMW instances.
//!
//! In a coherent schedule of read-modify-writes, every operation's read
//! component must return the previous operation's write component (the
//! schedule is a *chain* through value space):
//!
//! * **One RMW per process** (Figure 5.3 row "1 Operation/Process", RMW
//!   column): there are no program-order constraints, so the question is
//!   exactly whether the multigraph with an edge `d_r → d_w` per operation
//!   has an Eulerian path starting at `d_I` (and ending at `d_F` if one is
//!   required). The paper lists O(n²); Hierholzer's algorithm gives O(n).
//! * **Read-map known** (values written at most once, nothing rewrites
//!   `d_I`): the chain is *forced* — from `d_I`, each step has exactly one
//!   candidate continuation — so a single O(n) scan that also checks
//!   program order decides the instance.

use crate::backtrack::precheck_ops;
use crate::verdict::{Verdict, Violation, ViolationKind};
use std::collections::HashMap;
use vermem_trace::{check_coherent_schedule, Addr, AddrOps, OpRef, Schedule, Trace, Value};

/// True if every operation at `addr` is an RMW and each process issues at
/// most one of them.
pub fn one_op_applicable(trace: &Trace, addr: Addr) -> bool {
    one_op_applicable_ops(&AddrOps::of(trace, addr))
}

/// As [`one_op_applicable`], from a pre-built index entry's cached
/// structure (no trace scan).
pub fn one_op_applicable_ops(ops: &AddrOps) -> bool {
    ops.all_rmw() && ops.max_ops_per_proc() <= 1
}

/// True if every operation at `addr` is an RMW, every value is written at
/// most once, and no operation re-installs the initial value.
pub fn readmap_applicable(trace: &Trace, addr: Addr) -> bool {
    readmap_applicable_ops(&AddrOps::of(trace, addr))
}

/// As [`readmap_applicable`], from a pre-built index entry's cached
/// structure (no trace scan).
pub fn readmap_applicable_ops(ops: &AddrOps) -> bool {
    ops.all_rmw() && ops.max_writes_per_value() <= 1 && ops.writes_of(ops.initial()) == 0
}

/// Eulerian-path decision for single-RMW-per-process instances. O(n).
pub fn solve_rmw_one_op(trace: &Trace, addr: Addr) -> Verdict {
    let verdict = solve_rmw_one_op_ops(&AddrOps::of(trace, addr));
    if let Verdict::Coherent(witness) = &verdict {
        debug_assert!(check_coherent_schedule(trace, addr, witness).is_ok());
    }
    verdict
}

/// As [`solve_rmw_one_op`], on a pre-built per-address index entry.
pub fn solve_rmw_one_op_ops(indexed: &AddrOps) -> Verdict {
    debug_assert!(one_op_applicable_ops(indexed));
    let addr = indexed.addr();
    if let Some(v) = precheck_ops(indexed) {
        return Verdict::Incoherent(v);
    }
    let ops: Vec<(OpRef, vermem_trace::Op)> = indexed.iter().collect();
    if ops.is_empty() {
        return match indexed.final_value() {
            Some(f) if f != indexed.initial() => Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::FinalValueUnwritable { value: f },
            }),
            _ => Verdict::Coherent(Schedule::new()),
        };
    }
    let initial = indexed.initial();

    // Out-edges per value: indices of unused ops reading that value.
    let mut out: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, (_, op)) in ops.iter().enumerate() {
        out.entry(op.read_value().expect("rmw"))
            .or_default()
            .push(i);
    }

    // Hierholzer from d_I: walk greedily, splicing detours.
    let mut stack: Vec<Value> = vec![initial];
    let mut path_ops: Vec<usize> = Vec::with_capacity(ops.len());
    let mut walk_ops: Vec<usize> = Vec::new(); // op taken to reach stack[i+1]
    while let Some(&v) = stack.last() {
        if let Some(next) = out.get_mut(&v).and_then(|es| es.pop()) {
            walk_ops.push(next);
            stack.push(ops[next].1.written_value().expect("rmw"));
        } else {
            stack.pop();
            if let Some(op) = walk_ops.pop() {
                path_ops.push(op);
            }
        }
    }
    path_ops.reverse();

    if path_ops.len() != ops.len() {
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::BrokenRmwChain {
                detail: format!(
                    "only {} of {} operations reachable in a chain from the initial value",
                    path_ops.len(),
                    ops.len()
                ),
            },
        });
    }
    // Validate chain continuity (Hierholzer may produce a valid Eulerian
    // path only if one exists; re-check linkage defensively).
    let mut current = initial;
    for &i in &path_ops {
        if ops[i].1.read_value() != Some(current) {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::BrokenRmwChain {
                    detail: "edges do not form a single chain from the initial value".into(),
                },
            });
        }
        current = ops[i].1.written_value().expect("rmw");
    }
    if let Some(f) = indexed.final_value() {
        if current != f {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::FinalValueUnwritable { value: f },
            });
        }
    }
    Verdict::Coherent(Schedule::from_refs(path_ops.iter().map(|&i| ops[i].0)))
}

/// Forced-chain decision for all-RMW instances with a known read-map. O(n).
pub fn solve_rmw_readmap(trace: &Trace, addr: Addr) -> Verdict {
    let verdict = solve_rmw_readmap_ops(&AddrOps::of(trace, addr));
    if let Verdict::Coherent(witness) = &verdict {
        debug_assert!(check_coherent_schedule(trace, addr, witness).is_ok());
    }
    verdict
}

/// As [`solve_rmw_readmap`], on a pre-built per-address index entry.
pub fn solve_rmw_readmap_ops(indexed: &AddrOps) -> Verdict {
    debug_assert!(readmap_applicable_ops(indexed));
    let addr = indexed.addr();
    if let Some(v) = precheck_ops(indexed) {
        return Verdict::Incoherent(v);
    }
    let ops: Vec<(OpRef, vermem_trace::Op)> = indexed.iter().collect();
    let initial = indexed.initial();

    // Each value is written at most once and d_I never rewritten, so at most
    // one reader per value is serviceable; a second reader is immediately
    // incoherent.
    let mut reader_of: HashMap<Value, usize> = HashMap::new();
    for (i, (_, op)) in ops.iter().enumerate() {
        let r = op.read_value().expect("rmw");
        if reader_of.insert(r, i).is_some() {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::BrokenRmwChain {
                    detail: format!("two RMWs read {r:?}, which is available only once"),
                },
            });
        }
    }

    // Follow the forced chain, checking program order as we go. Values along
    // the chain are pairwise distinct (each written once, d_I never
    // rewritten), so no operation can be revisited; the `used` guard is
    // defensive.
    let mut chain: Vec<usize> = Vec::with_capacity(ops.len());
    let mut used = vec![false; ops.len()];
    let mut last_index: HashMap<u16, u32> = HashMap::new();
    let mut current = initial;
    while let Some(&i) = reader_of.get(&current) {
        let (r, op) = ops[i];
        if used[i] {
            break; // value cycle returned to a consumed op
        }
        used[i] = true;
        if let Some(&prev) = last_index.get(&r.proc.0) {
            if r.index <= prev {
                return Verdict::Incoherent(Violation {
                    addr,
                    kind: ViolationKind::BrokenRmwChain {
                        detail: format!("forced chain violates program order at {r:?}"),
                    },
                });
            }
        }
        last_index.insert(r.proc.0, r.index);
        chain.push(i);
        current = op.written_value().expect("rmw");
    }
    if chain.len() != ops.len() {
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::BrokenRmwChain {
                detail: format!(
                    "forced chain covers {} of {} operations",
                    chain.len(),
                    ops.len()
                ),
            },
        });
    }
    if let Some(f) = indexed.final_value() {
        if current != f {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::FinalValueUnwritable { value: f },
            });
        }
    }
    Verdict::Coherent(Schedule::from_refs(chain.iter().map(|&i| ops[i].0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking, SearchConfig};
    use vermem_trace::{Op, TraceBuilder};

    #[test]
    fn one_op_applicability() {
        let ok = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([])
            .build();
        assert!(one_op_applicable(&ok, Addr::ZERO));
        let two = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(1u64, 2u64)])
            .build();
        assert!(!one_op_applicable(&two, Addr::ZERO));
        let simple = TraceBuilder::new().proc([Op::w(1u64)]).build();
        assert!(!one_op_applicable(&simple, Addr::ZERO));
    }

    #[test]
    fn eulerian_chain_found() {
        // 0->1, 1->2, 2->0, 0->3: path 0→1→2→0→3.
        let t = TraceBuilder::new()
            .proc([Op::rw(2u64, 0u64)])
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(0u64, 3u64)])
            .proc([Op::rw(1u64, 2u64)])
            .build();
        let v = solve_rmw_one_op(&t, Addr::ZERO);
        let s = v.schedule().expect("eulerian path exists");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn no_eulerian_path_detected() {
        // Two ops both reading 0 with nothing restoring 0.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(0u64, 2u64)])
            .build();
        assert!(solve_rmw_one_op(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn disconnected_component_detected() {
        // 0->1 plus 5->6: 5 never reachable (5 unreadable caught by precheck
        // since 5 is never written and != d_I).
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(5u64, 6u64)])
            .build();
        assert!(solve_rmw_one_op(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn disconnected_cycle_detected() {
        // 0->1 plus a separate cycle 5->6, 6->5: all values written, but the
        // cycle is unreachable from the main chain... actually 5 IS written
        // (by 6->5) so precheck passes; Eulerian connectivity must catch it.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(5u64, 6u64)])
            .proc([Op::rw(6u64, 5u64)])
            .build();
        let v = solve_rmw_one_op(&t, Addr::ZERO);
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::BrokenRmwChain { .. }
        ));
    }

    #[test]
    fn eulerian_final_value_constraint() {
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 0u64)])
            .final_value(0u32, 0u64)
            .build();
        assert!(solve_rmw_one_op(&t, Addr::ZERO).is_coherent());
        let t2 = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 0u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(solve_rmw_one_op(&t2, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn forced_chain_respects_program_order() {
        // Chain 0->1->2 but P0 issues them in the wrong program order.
        let bad = TraceBuilder::new()
            .proc([Op::rw(1u64, 2u64), Op::rw(0u64, 1u64)])
            .build();
        assert!(readmap_applicable(&bad, Addr::ZERO));
        assert!(solve_rmw_readmap(&bad, Addr::ZERO).is_incoherent());

        let good = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(1u64, 2u64)])
            .build();
        let v = solve_rmw_readmap(&good, Addr::ZERO);
        check_coherent_schedule(&good, Addr::ZERO, v.schedule().unwrap()).unwrap();
    }

    #[test]
    fn duplicate_readers_incoherent() {
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(0u64, 2u64)])
            .build();
        assert!(readmap_applicable(&t, Addr::ZERO));
        assert!(solve_rmw_readmap(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn one_op_agrees_with_exact_on_random_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..150u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..=6usize);
            let mut b = TraceBuilder::new();
            for _ in 0..n {
                b = b.proc([Op::rw(rng.gen_range(0..4u64), rng.gen_range(0..4u64))]);
            }
            let t = b.build();
            let fast = solve_rmw_one_op(&t, Addr::ZERO);
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            assert_eq!(
                fast.is_coherent(),
                exact.is_coherent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn readmap_agrees_with_exact_on_random_instances() {
        use vermem_util::rng::{SliceRandom, StdRng};
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(7000 + seed);
            // Build a chain of unique values, then shuffle ops across procs.
            let n = rng.gen_range(1..=6usize);
            let chain: Vec<Op> = (0..n).map(|i| Op::rw(i as u64, (i + 1) as u64)).collect();
            let procs = rng.gen_range(1..=3usize).min(n);
            let mut hist: Vec<Vec<Op>> = vec![Vec::new(); procs];
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            for (pos, &i) in order.iter().enumerate() {
                hist[pos % procs].push(chain[i]);
            }
            let mut b = TraceBuilder::new();
            for h in hist {
                b = b.proc(h);
            }
            let t = b.build();
            if !readmap_applicable(&t, Addr::ZERO) {
                continue;
            }
            let fast = solve_rmw_readmap(&t, Addr::ZERO);
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            assert_eq!(
                fast.is_coherent(),
                exact.is_coherent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }
}
