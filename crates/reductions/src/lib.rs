//! # vermem-reductions
//!
//! Executable constructions of every reduction figure in *The Complexity of
//! Verifying Memory Coherence and Consistency* (Cantin, Lipasti & Smith):
//!
//! | Figure | Construction | Module |
//! |---|---|---|
//! | 4.1 | SAT → VMC (Theorem 4.2) | [`sat_to_vmc`] |
//! | 4.2 | the worked example `Q = u` | [`sat_to_vmc::example_fig_4_2`] |
//! | 5.1 | 3SAT → VMC, ≤3 simple ops/process, ≤2 writes/value | [`threesat_restricted`] |
//! | 5.2 | 3SAT → VMC, ≤2 RMWs/process, ≤3 writes/value | [`threesat_rmw`] |
//! | 6.1 | the Figure 4.1 instance under LRC synchronization | [`lrc`] |
//! | 6.2 | SAT → VSCC (coherent by construction, Figure 6.3) | [`sat_to_vscc`] |
//!
//! Every construction is validated in tests by *differential
//! equisatisfiability*: the source formula is solved with the CDCL solver
//! and the constructed instance with the exact coherence/consistency
//! solvers, and the two answers must agree; satisfying assignments are
//! extracted back out of witness schedules and re-checked against the
//! formula.
//!
//! Figures 5.1 and 5.2 are OCR-damaged in the available text of the paper;
//! the constructions here are reconstructions that meet the same stated
//! restrictions (checked structurally in tests via the Figure 5.3
//! classifier) and preserve equisatisfiability. See the module docs for
//! the reconstructed gadget designs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lrc;
pub mod sat_to_vmc;
pub mod sat_to_vscc;
pub mod threesat_restricted;
pub mod threesat_rmw;

pub use lrc::{reduce_sat_to_lrc, LrcReduction};
pub use sat_to_vmc::{example_fig_4_2, reduce_sat_to_vmc, VmcReduction};
pub use sat_to_vscc::{reduce_sat_to_vscc, VsccReduction};
pub use threesat_restricted::{reduce_3sat_restricted, Restricted3SatReduction};
pub use threesat_rmw::{reduce_3sat_rmw, Rmw3SatReduction};
