//! The Figure 5.1 reduction: 3SAT → VMC with **at most three simple
//! operations per process** and **every value written at most twice**.
//!
//! The published figure is partially corrupted in the source text, so this
//! is a reconstruction that provably meets the same two restrictions and is
//! equisatisfiable (validated differentially in the tests). Structure:
//!
//! * `h₁`/`h₂` are split into ⌈m/3⌉ histories of ≤3 writes each, writing
//!   `d_u` / `d_ū` respectively — their interleaving fixes the assignment.
//! * One history per **literal occurrence** (`u` as the k-th literal of
//!   clause `c_j`): `[R(d_u), R(d_ū), W(d_{j,k})]` — schedulable before the
//!   rewrite phase iff the literal is true.
//! * Per clause `j`, a **funnel** converts any position seed into a single
//!   canonical value `out_j` without exceeding two writes per value:
//!   `[R(d_{j,1}), W(m_j)]`, `[R(d_{j,2}), W(m_j)]`, `[R(m_j), W(out_j)]`,
//!   `[R(d_{j,3}), W(out_j)]`.
//! * A **chain** `[R(chain_{j-1}), R(out_j), W(chain_j)]` forces `chain_n`
//!   to be producible only when *every* clause has been satisfied.
//! * Per variable, a rewrite history `[R(chain_n), W(d_u), W(d_ū)]` then
//!   unblocks the false-literal histories.
//!
//! Write counts: `d_u`/`d_ū` twice (`h₁`/`h₂` + rewrite); `d_{j,k}` once;
//! `m_j` ≤ twice; `out_j` ≤ twice; `chain_j` once. Every history has ≤ 3
//! operations. Both Figure 5.3 NP-complete rows are therefore witnessed by
//! a single construction, as the paper notes.

use vermem_sat::{Cnf, Lit, Var};
use vermem_trace::{Op, ProcessHistory, Trace, Value};

/// The constructed restricted instance.
pub struct Restricted3SatReduction {
    /// The single-address VMC instance.
    pub trace: Trace,
    /// Number of SAT variables.
    pub num_vars: u32,
}

struct ValueSpace {
    m: u64,
    n: u64,
}

impl ValueSpace {
    fn d_pos(&self, i: u32) -> Value {
        Value(1 + 2 * u64::from(i))
    }
    fn d_neg(&self, i: u32) -> Value {
        Value(2 + 2 * u64::from(i))
    }
    /// Position value `d_{j,k}` for clause j (0-based), position k (0..3).
    fn d_clause_pos(&self, j: usize, k: usize) -> Value {
        Value(1 + 2 * self.m + (j as u64) * 3 + k as u64)
    }
    fn d_merge(&self, j: usize) -> Value {
        Value(1 + 2 * self.m + 3 * self.n + j as u64)
    }
    fn d_out(&self, j: usize) -> Value {
        Value(1 + 2 * self.m + 4 * self.n + j as u64)
    }
    fn d_chain(&self, j: usize) -> Value {
        Value(1 + 2 * self.m + 5 * self.n + j as u64)
    }
}

/// Build the restricted instance for a CNF with at most three literals per
/// clause.
///
/// # Panics
/// Panics if some clause has more than three literals.
pub fn reduce_3sat_restricted(cnf: &Cnf) -> Restricted3SatReduction {
    for clause in cnf.clauses() {
        assert!(
            clause.len() <= 3,
            "3SAT reduction requires clauses of at most 3 literals"
        );
    }
    let m = cnf.num_vars();
    let n = cnf.num_clauses();
    let vs = ValueSpace {
        m: u64::from(m),
        n: n as u64,
    };
    let mut histories: Vec<ProcessHistory> = Vec::new();

    // h1 groups: ≤3 writes of d_u per history.
    for chunk in (0..m).collect::<Vec<_>>().chunks(3) {
        histories.push(chunk.iter().map(|&i| Op::w(vs.d_pos(i))).collect());
    }
    // h2 groups.
    for chunk in (0..m).collect::<Vec<_>>().chunks(3) {
        histories.push(chunk.iter().map(|&i| Op::w(vs.d_neg(i))).collect());
    }

    // Literal-occurrence histories.
    for (j, clause) in cnf.clauses().iter().enumerate() {
        for (k, &lit) in clause.iter().enumerate() {
            let i = lit.var().0;
            let (first, second) = if lit.is_pos() {
                (vs.d_pos(i), vs.d_neg(i))
            } else {
                (vs.d_neg(i), vs.d_pos(i))
            };
            histories.push(ProcessHistory::from_ops([
                Op::r(first),
                Op::r(second),
                Op::w(vs.d_clause_pos(j, k)),
            ]));
        }
    }

    // Clause funnels.
    for (j, clause) in cnf.clauses().iter().enumerate() {
        match clause.len() {
            0 => {
                // Empty clause: out_j has no producer; the chain history
                // below blocks forever, making the instance incoherent —
                // matching unsatisfiability.
            }
            1 => {
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 0)),
                    Op::w(vs.d_out(j)),
                ]));
            }
            2 => {
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 0)),
                    Op::w(vs.d_merge(j)),
                ]));
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 1)),
                    Op::w(vs.d_merge(j)),
                ]));
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_merge(j)),
                    Op::w(vs.d_out(j)),
                ]));
            }
            _ => {
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 0)),
                    Op::w(vs.d_merge(j)),
                ]));
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 1)),
                    Op::w(vs.d_merge(j)),
                ]));
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_merge(j)),
                    Op::w(vs.d_out(j)),
                ]));
                histories.push(ProcessHistory::from_ops([
                    Op::r(vs.d_clause_pos(j, 2)),
                    Op::w(vs.d_out(j)),
                ]));
            }
        }
    }

    // The clause chain: chain_j requires chain_{j-1} and out_j.
    for j in 0..n {
        let mut h = ProcessHistory::new();
        if j > 0 {
            h.push(Op::r(vs.d_chain(j - 1)));
        }
        h.push(Op::r(vs.d_out(j)));
        h.push(Op::w(vs.d_chain(j)));
        histories.push(h);
    }

    // Per-variable rewrite histories, gated on chain_n (or ungated if there
    // are no clauses).
    for i in 0..m {
        let mut h = ProcessHistory::new();
        if n > 0 {
            h.push(Op::r(vs.d_chain(n - 1)));
        }
        h.push(Op::w(vs.d_pos(i)));
        h.push(Op::w(vs.d_neg(i)));
        histories.push(h);
    }

    Restricted3SatReduction {
        trace: Trace::from_histories(histories),
        num_vars: m,
    }
}

/// Check whether a literal occurs in a clause (used by tests).
pub fn clause_contains(clause: &[Lit], var: Var, positive: bool) -> bool {
    clause.contains(&var.lit(positive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_coherence::{solve_backtracking, SearchConfig};
    use vermem_trace::classify::{InstanceProfile, OpMix};
    use vermem_trace::Addr;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    fn coherent(trace: &Trace) -> bool {
        solve_backtracking(trace, Addr::ZERO, &SearchConfig::default()).is_coherent()
    }

    #[test]
    fn meets_figure_5_1_restrictions() {
        let f = cnf(&[&[1, 2, 3], &[-1, -2], &[2, -3], &[3]]);
        let red = reduce_3sat_restricted(&f);
        let profile = InstanceProfile::of(&red.trace, Addr::ZERO);
        assert!(profile.max_ops_per_proc <= 3, "≤3 ops per process required");
        assert!(
            profile.max_writes_per_value <= 2,
            "≤2 writes per value required"
        );
        assert_eq!(profile.mix, OpMix::SimpleOnly);
    }

    #[test]
    fn satisfiable_instances_are_coherent() {
        for f in [
            cnf(&[&[1]]),
            cnf(&[&[1, 2], &[-1, 2]]),
            cnf(&[&[1, 2, 3], &[-1, -2, -3], &[1, -2, 3], &[-1, 2, -3]]),
        ] {
            assert!(vermem_sat::solve_cdcl(&f).is_sat());
            let red = reduce_3sat_restricted(&f);
            assert!(
                coherent(&red.trace),
                "SAT formula must reduce to coherent instance"
            );
        }
    }

    #[test]
    fn unsatisfiable_instances_are_incoherent() {
        for f in [
            cnf(&[&[1], &[-1]]),
            cnf(&[&[]]),
            cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]),
        ] {
            assert!(!vermem_sat::solve_cdcl(&f).is_sat());
            let red = reduce_3sat_restricted(&f);
            assert!(
                !coherent(&red.trace),
                "UNSAT formula must reduce to incoherent instance"
            );
        }
    }

    #[test]
    fn equisatisfiable_on_random_3sat() {
        // Instance sizes are kept small: the reduced instances land in the
        // NP-complete cell of Figure 5.3 and the exact solver's worst case
        // is exponential (see the fig5_reductions bench for the blow-up).
        for seed in 0..20u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 2,
                num_clauses: 3 + (seed % 3) as usize,
                k: 2,
                seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let sat = vermem_sat::solve_cdcl(&f).is_sat();
            let red = reduce_3sat_restricted(&f);
            assert_eq!(
                coherent(&red.trace),
                sat,
                "seed {seed}: equisatisfiability violated"
            );
        }
    }

    #[test]
    fn short_clauses_supported() {
        let f = cnf(&[&[1], &[-1, 2], &[1, -2, 3]]);
        let red = reduce_3sat_restricted(&f);
        assert!(coherent(&red.trace));
        let profile = InstanceProfile::of(&red.trace, Addr::ZERO);
        assert!(profile.max_writes_per_value <= 2);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn rejects_wide_clauses() {
        let f = cnf(&[&[1, 2, 3, 4]]);
        reduce_3sat_restricted(&f);
    }
}
