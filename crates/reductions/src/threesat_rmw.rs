//! The Figure 5.2 reduction: 3SAT → VMC with **only read-modify-write
//! operations, at most two per process, and every value written at most
//! three times**.
//!
//! As with Figure 5.1 the published figure is corrupted in the source text;
//! this reconstruction keeps its visible architecture (a `B`-token spine
//! through the variables, `t`/`c` token–clause alternation, per-occurrence
//! two-RMW literal histories, a final value `d_F`) and provably meets the
//! same restrictions, with equisatisfiability validated differentially.
//!
//! Because every operation is an RMW, a coherent schedule is a single chain
//! through value space: op `k+1` reads what op `k` wrote. The construction
//! shapes that chain as:
//!
//! ```text
//! d_I → B₁ →(true families)→ B_{m+1} → t₁ → c₁ → t₂ → … → c_n → R
//!     ↘ rewind: R → B₁ →(false families)→ B_{m+1} → pass-B clause work → F
//! ```
//!
//! * **Variable gadget:** for each variable, each of its two literal
//!   *families* chains `B_i → … → B_{i+1}` with the first RMW of each
//!   occurrence history. Only one family fits in the first traversal (the
//!   `B_i` value exists once per pass); that family is the true literal.
//! * **Clause gadget (pass A):** token `t_j` is produced once by the spine;
//!   only a literal history whose first RMW already executed — a *true*
//!   literal — can consume it (`RW(t_j, c_j)`), and the spine needs `c_j`
//!   to advance. Hence the spine reaches the rewind token `R` iff every
//!   clause holds under the assignment.
//! * **Pass B:** after the rewind, the false families traverse the `B`
//!   spine again, and the remaining literal second-RMWs are consumed by a
//!   second token pass (`r_j = |c_j| - 1` consumers per clause, fed by
//!   `RW(c_j, t_j)` producers), ending in the final value `d_F` that the
//!   instance's final-value constraint pins.
//!
//! Write counts: `t_j` is written `|c_j| ≤ 3` times; `B₁` and `B_{m+1}`
//! twice; everything else at most twice.

use std::collections::BTreeMap;
use vermem_sat::{Cnf, Lit};
use vermem_trace::{Op, ProcessHistory, Trace, Value};

/// The constructed all-RMW instance.
pub struct Rmw3SatReduction {
    /// The single-address, all-RMW VMC instance with a final-value
    /// constraint.
    pub trace: Trace,
    /// Number of SAT variables.
    pub num_vars: u32,
}

/// Build the all-RMW restricted instance for a CNF with at most three
/// literals per clause.
///
/// # Panics
/// Panics if some clause has more than three literals.
pub fn reduce_3sat_rmw(cnf: &Cnf) -> Rmw3SatReduction {
    for clause in cnf.clauses() {
        assert!(
            clause.len() <= 3,
            "3SAT reduction requires clauses of at most 3 literals"
        );
    }
    let m = cnf.num_vars() as usize;
    let n = cnf.num_clauses();

    // Deduplicated occurrence lists per literal (lit -> clause indices).
    let mut occurrences: BTreeMap<Lit, Vec<usize>> = BTreeMap::new();
    for i in 0..m as u32 {
        occurrences.insert(vermem_sat::Var(i).pos(), Vec::new());
        occurrences.insert(vermem_sat::Var(i).neg(), Vec::new());
    }
    for (j, clause) in cnf.clauses().iter().enumerate() {
        for &lit in clause {
            occurrences.get_mut(&lit).expect("declared var").push(j);
        }
    }

    // Value allocator.
    let mut next = 1u64;
    let mut fresh = || {
        let v = Value(next);
        next += 1;
        v
    };
    let b: Vec<Value> = (0..=m).map(|_| fresh()).collect(); // B_1..B_{m+1}
    let t: Vec<Value> = (0..n).map(|_| fresh()).collect();
    let c: Vec<Value> = (0..n).map(|_| fresh()).collect();
    let rewind_token = fresh();
    let final_value = fresh();

    let mut histories: Vec<ProcessHistory> = Vec::new();

    // Spine start: d_I → B_1.
    histories.push(ProcessHistory::from_ops([Op::rw(Value::INITIAL, b[0])]));

    // Variable gadgets.
    for i in 0..m {
        for positive in [true, false] {
            let lit = vermem_sat::Var(i as u32).lit(positive);
            let occ = &occurrences[&lit];
            if occ.is_empty() {
                histories.push(ProcessHistory::from_ops([Op::rw(b[i], b[i + 1])]));
                continue;
            }
            // Chain B_i → X_1 → … → B_{i+1}; second RMW does clause work.
            let mut prev = b[i];
            for (k, &j) in occ.iter().enumerate() {
                let next_val = if k + 1 == occ.len() {
                    b[i + 1]
                } else {
                    fresh()
                };
                histories.push(ProcessHistory::from_ops([
                    Op::rw(prev, next_val),
                    Op::rw(t[j], c[j]),
                ]));
                prev = next_val;
            }
        }
    }

    // Pass A token spine: B_{m+1} → t_1, then c_j → t_{j+1}, ending in R.
    if n == 0 {
        histories.push(ProcessHistory::from_ops([Op::rw(b[m], rewind_token)]));
    } else {
        histories.push(ProcessHistory::from_ops([Op::rw(b[m], t[0])]));
        for j in 0..n {
            let target = if j + 1 == n { rewind_token } else { t[j + 1] };
            histories.push(ProcessHistory::from_ops([Op::rw(c[j], target)]));
        }
    }

    // Rewind: R → B_1 (second pass for the false families).
    histories.push(ProcessHistory::from_ops([Op::rw(rewind_token, b[0])]));

    // Pass B: serve the remaining r_j = |c_j| - 1 literal consumers per
    // clause, then end in d_F.
    let pass_b: Vec<usize> = (0..n).filter(|&j| cnf.clauses()[j].len() > 1).collect();
    if pass_b.is_empty() {
        histories.push(ProcessHistory::from_ops([Op::rw(b[m], final_value)]));
    } else {
        histories.push(ProcessHistory::from_ops([Op::rw(b[m], t[pass_b[0]])]));
        for (a, &j) in pass_b.iter().enumerate() {
            let r_j = cnf.clauses()[j].len() - 1;
            // Internal producers: r_j - 1 extra t_j instances.
            for _ in 0..r_j.saturating_sub(1) {
                histories.push(ProcessHistory::from_ops([Op::rw(c[j], t[j])]));
            }
            // Out edge to the next pass-B clause, or to the final value.
            let target = if a + 1 == pass_b.len() {
                final_value
            } else {
                t[pass_b[a + 1]]
            };
            histories.push(ProcessHistory::from_ops([Op::rw(c[j], target)]));
        }
    }

    let mut trace = Trace::from_histories(histories);
    trace.set_final(0u32, final_value);
    Rmw3SatReduction {
        trace,
        num_vars: m as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_coherence::{solve_backtracking, SearchConfig};
    use vermem_trace::classify::{InstanceProfile, OpMix};
    use vermem_trace::Addr;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    fn coherent(trace: &Trace) -> bool {
        solve_backtracking(trace, Addr::ZERO, &SearchConfig::default()).is_coherent()
    }

    #[test]
    fn meets_figure_5_2_restrictions() {
        let f = cnf(&[&[1, 2, 3], &[-1, -2], &[2, -3], &[3]]);
        let red = reduce_3sat_rmw(&f);
        let profile = InstanceProfile::of(&red.trace, Addr::ZERO);
        assert_eq!(profile.mix, OpMix::RmwOnly, "only RMW operations allowed");
        assert!(
            profile.max_ops_per_proc <= 2,
            "≤2 RMWs per process required"
        );
        assert!(
            profile.max_writes_per_value <= 3,
            "≤3 writes per value required"
        );
    }

    #[test]
    fn satisfiable_instances_are_coherent() {
        for f in [
            cnf(&[&[1]]),
            cnf(&[&[1, 2], &[-1, 2]]),
            cnf(&[&[1, 2, 3], &[-1, -2, -3]]),
            cnf(&[]),
        ] {
            assert!(vermem_sat::solve_cdcl(&f).is_sat());
            let red = reduce_3sat_rmw(&f);
            assert!(
                coherent(&red.trace),
                "SAT formula must reduce to coherent instance"
            );
        }
    }

    #[test]
    fn unsatisfiable_instances_are_incoherent() {
        for f in [
            cnf(&[&[1], &[-1]]),
            cnf(&[&[]]),
            cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]),
        ] {
            assert!(!vermem_sat::solve_cdcl(&f).is_sat());
            let red = reduce_3sat_rmw(&f);
            assert!(
                !coherent(&red.trace),
                "UNSAT formula must reduce to incoherent instance"
            );
        }
    }

    #[test]
    fn equisatisfiable_on_random_3sat() {
        for seed in 0..25u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 3,
                num_clauses: 3 + (seed % 4) as usize,
                k: 3,
                seed: 500 + seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let sat = vermem_sat::solve_cdcl(&f).is_sat();
            let red = reduce_3sat_rmw(&f);
            assert_eq!(
                coherent(&red.trace),
                sat,
                "seed {seed}: equisatisfiability violated"
            );
        }
    }

    #[test]
    fn mixed_clause_sizes() {
        let f = cnf(&[&[1], &[-1, 2], &[1, -2, 3], &[-3, -2]]);
        assert!(vermem_sat::solve_cdcl(&f).is_sat());
        let red = reduce_3sat_rmw(&f);
        assert!(coherent(&red.trace));
    }
}
