//! The Figure 6.1 reduction: extending SAT → VMC to Lazy Release
//! Consistency (§6.2).
//!
//! LRC relaxes coherence itself, so the bare VMC reduction does not apply —
//! but LRC still serializes operations protected by acquire/release pairs
//! on a common lock. Figure 6.1 therefore wraps *every* memory operation of
//! the Figure 4.1 instance in `Acq … Rel` of one lock: under LRC, the
//! wrapped operations must appear serialized, so the synchronized execution
//! adheres to LRC iff the underlying VMC instance is coherent iff the SAT
//! formula is satisfiable.

use crate::sat_to_vmc::{reduce_sat_to_vmc, VmcReduction};
use vermem_consistency::lrc::{LockId, SyncHistory, SyncTrace};
use vermem_sat::Cnf;

/// The lock used by the construction.
pub const LOCK: LockId = LockId(0);

/// The synchronized instance plus the underlying Figure 4.1 reduction.
pub struct LrcReduction {
    /// The fully synchronized trace (every memory operation wrapped in
    /// `Acq(LOCK) … Rel(LOCK)`).
    pub sync_trace: SyncTrace,
    /// The underlying VMC reduction (for assignment extraction).
    pub vmc: VmcReduction,
}

/// Build the Figure 6.1 instance: the Figure 4.1 VMC instance with every
/// operation individually synchronized.
pub fn reduce_sat_to_lrc(cnf: &Cnf) -> LrcReduction {
    let vmc = reduce_sat_to_vmc(cnf);
    let mut sync_trace = SyncTrace::new();
    for history in vmc.trace.histories() {
        let mut h = SyncHistory::default();
        for op in history.iter() {
            h.push_synchronized(LOCK, op);
        }
        sync_trace.push_history(h);
    }
    LrcReduction { sync_trace, vmc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_consistency::lrc::verify_lrc_fully_synchronized;
    use vermem_sat::{solve_cdcl, Lit};

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    #[test]
    fn construction_is_fully_synchronized() {
        let red = reduce_sat_to_lrc(&cnf(&[&[1, 2], &[-1, 2]]));
        assert!(red.sync_trace.is_fully_synchronized(LOCK));
        // Three sync ops per memory op.
        let mem_ops = red.vmc.trace.num_ops();
        let sync_ops: usize = red
            .sync_trace
            .histories()
            .iter()
            .map(|h| h.ops().len())
            .sum();
        assert_eq!(sync_ops, 3 * mem_ops);
    }

    #[test]
    fn stripping_recovers_the_vmc_instance() {
        let red = reduce_sat_to_lrc(&cnf(&[&[1]]));
        assert_eq!(red.sync_trace.strip_sync(), red.vmc.trace);
    }

    #[test]
    fn lrc_adherence_iff_satisfiable() {
        for (f, expect) in [
            (cnf(&[&[1]]), true),
            (cnf(&[&[1, 2], &[-1, 2], &[1, -2]]), true),
            (cnf(&[&[1], &[-1]]), false),
            (cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]), false),
        ] {
            assert_eq!(solve_cdcl(&f).is_sat(), expect);
            let red = reduce_sat_to_lrc(&f);
            let verdict = verify_lrc_fully_synchronized(&red.sync_trace, LOCK)
                .expect("construction is fully synchronized");
            assert_eq!(verdict.is_coherent(), expect);
        }
    }
}
