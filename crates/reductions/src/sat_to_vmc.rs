//! The Figure 4.1 reduction: SAT → VMC (Theorem 4.2).
//!
//! Given a SAT instance `Q` with variables `U` and clauses `C`, build a
//! single-address VMC instance `V` that is coherent iff `Q` is satisfiable:
//!
//! * two data values `d_u`, `d_ū` encode each variable's truth as the order
//!   in which they are first written (equation 4.1);
//! * `h₁` writes every `d_u`, `h₂` every `d_ū`; their interleaving fixes a
//!   truth assignment;
//! * one history per literal reads the two values in the order that makes
//!   the literal *true*, then writes `d_c` for each clause the literal
//!   appears in;
//! * `h₃` reads every `d_c` (so it is schedulable only when every clause is
//!   satisfied), then rewrites all `d_u`/`d_ū` so the remaining (false-
//!   literal) histories can complete.
//!
//! For `m` variables and `n` clauses the instance has `2m + 3` process
//! histories and `O(mn)` operations.

use vermem_sat::{Cnf, Model, Var};
use vermem_trace::{Op, OpRef, ProcessHistory, Schedule, Trace, Value};

/// The constructed VMC instance together with the bookkeeping needed to
/// map schedules back to truth assignments.
pub struct VmcReduction {
    /// The single-address VMC instance (address 0).
    pub trace: Trace,
    /// Number of SAT variables `m`.
    pub num_vars: u32,
    /// `h₁`'s write of `d_u` for each variable (program order ref).
    pub h1_write: Vec<OpRef>,
    /// `h₂`'s write of `d_ū` for each variable.
    pub h2_write: Vec<OpRef>,
}

/// `d_u` for variable `i` (1-based value namespace; 0 is `d_I`).
pub fn d_pos(i: u32) -> Value {
    Value(1 + 2 * u64::from(i))
}

/// `d_ū` for variable `i`.
pub fn d_neg(i: u32) -> Value {
    Value(2 + 2 * u64::from(i))
}

/// `d_c` for clause `j`, clear of the variable value namespace.
pub fn d_clause(num_vars: u32, j: usize) -> Value {
    Value(1 + 2 * u64::from(num_vars) + j as u64)
}

/// Build the Figure 4.1 instance for `cnf`.
///
/// Clauses are used as given except that duplicate literals are collapsed;
/// an empty clause yields an unsatisfiable instance (its `d_c` is never
/// written), matching SAT semantics.
pub fn reduce_sat_to_vmc(cnf: &Cnf) -> VmcReduction {
    let m = cnf.num_vars();
    let mut histories: Vec<ProcessHistory> = Vec::with_capacity(2 * m as usize + 3);

    // h1: W(d_u) for every variable, in order.
    let h1: ProcessHistory = (0..m).map(|i| Op::w(d_pos(i))).collect();
    // h2: W(d_ū) for every variable.
    let h2: ProcessHistory = (0..m).map(|i| Op::w(d_neg(i))).collect();
    histories.push(h1);
    histories.push(h2);

    // Literal histories: for literal `u` read d_u then d_ū (that order holds
    // iff the literal is true), then write d_c for each clause it appears
    // in. Complemented literals read in the opposite order.
    for i in 0..m {
        for positive in [true, false] {
            let (first, second) = if positive {
                (d_pos(i), d_neg(i))
            } else {
                (d_neg(i), d_pos(i))
            };
            let mut h = ProcessHistory::new();
            h.push(Op::r(first));
            h.push(Op::r(second));
            for (j, clause) in cnf.clauses().iter().enumerate() {
                let lit = Var(i).lit(positive);
                if clause.contains(&lit) {
                    h.push(Op::w(d_clause(m, j)));
                }
            }
            histories.push(h);
        }
    }

    // h3: read every clause value, then rewrite all variable values.
    let mut h3 = ProcessHistory::new();
    for j in 0..cnf.num_clauses() {
        h3.push(Op::r(d_clause(m, j)));
    }
    for i in 0..m {
        h3.push(Op::w(d_pos(i)));
    }
    for i in 0..m {
        h3.push(Op::w(d_neg(i)));
    }
    histories.push(h3);

    let trace = Trace::from_histories(histories);
    let h1_write = (0..m).map(|i| OpRef::new(0u16, i)).collect();
    let h2_write = (0..m).map(|i| OpRef::new(1u16, i)).collect();
    VmcReduction {
        trace,
        num_vars: m,
        h1_write,
        h2_write,
    }
}

impl VmcReduction {
    /// Extract the truth assignment encoded by a coherent schedule
    /// (equation 4.1): `T(u) = true` iff `h₁`'s `W(d_u)` precedes `h₂`'s
    /// `W(d_ū)`.
    pub fn extract_assignment(&self, schedule: &Schedule) -> Model {
        let mut pos = std::collections::HashMap::new();
        for (i, &r) in schedule.refs().iter().enumerate() {
            pos.insert(r, i);
        }
        let values = (0..self.num_vars as usize)
            .map(|i| pos[&self.h1_write[i]] < pos[&self.h2_write[i]])
            .collect();
        Model::from_values(values)
    }
}

/// The worked example of Figure 4.2: the instance for `Q = u` (one
/// variable, one unit clause containing the positive literal).
pub fn example_fig_4_2() -> VmcReduction {
    let mut cnf = Cnf::new();
    let u = cnf.new_var();
    cnf.add_clause([u.pos()]);
    reduce_sat_to_vmc(&cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_coherence::{solve_backtracking, SearchConfig, Verdict};
    use vermem_sat::{solve_cdcl, Lit};
    use vermem_trace::Addr;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    fn vmc_coherent(trace: &Trace) -> Verdict {
        solve_backtracking(trace, Addr::ZERO, &SearchConfig::default())
    }

    #[test]
    fn figure_4_2_shape() {
        let red = example_fig_4_2();
        let t = &red.trace;
        // H = {h1, h2, hu, hū, h3}: 2m+3 = 5 histories.
        assert_eq!(t.num_procs(), 5);
        // h1 = [W(d_u)], h2 = [W(d_ū)].
        assert_eq!(t.histories()[0].ops(), &[Op::w(d_pos(0))]);
        assert_eq!(t.histories()[1].ops(), &[Op::w(d_neg(0))]);
        // h_u = [R(d_u), R(d_ū), W(d_c)].
        assert_eq!(
            t.histories()[2].ops(),
            &[Op::r(d_pos(0)), Op::r(d_neg(0)), Op::w(d_clause(1, 0))]
        );
        // h_ū = [R(d_ū), R(d_u)].
        assert_eq!(t.histories()[3].ops(), &[Op::r(d_neg(0)), Op::r(d_pos(0))]);
        // h3 = [R(d_c), W(d_u), W(d_ū)].
        assert_eq!(
            t.histories()[4].ops(),
            &[Op::r(d_clause(1, 0)), Op::w(d_pos(0)), Op::w(d_neg(0))]
        );
    }

    #[test]
    fn figure_4_2_is_coherent_and_orders_du_first() {
        let red = example_fig_4_2();
        let verdict = vmc_coherent(&red.trace);
        let schedule = verdict.schedule().expect("Q = u is satisfiable");
        // The paper: a coherent schedule exists iff W(d_u) precedes W(d_ū).
        let model = red.extract_assignment(schedule);
        assert_eq!(model.value(vermem_sat::Var(0)), Some(true));
    }

    #[test]
    fn instance_size_matches_paper() {
        // 2m+3 histories, O(mn) operations.
        let f = cnf(&[&[1, 2, 3], &[-1, -2], &[2, -3]]);
        let red = reduce_sat_to_vmc(&f);
        assert_eq!(red.trace.num_procs(), 2 * 3 + 3);
        let m = 3u64;
        let n = 3u64;
        assert!((red.trace.num_ops() as u64) <= 4 * m + 3 * n + 3 * m * n + 3);
    }

    #[test]
    fn unsatisfiable_formulas_reduce_to_incoherent_instances() {
        for f in [
            cnf(&[&[1], &[-1]]),
            cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]),
            cnf(&[&[]]),
        ] {
            assert!(!solve_cdcl(&f).is_sat(), "formula should be UNSAT");
            let red = reduce_sat_to_vmc(&f);
            assert!(
                vmc_coherent(&red.trace).is_incoherent(),
                "reduction of UNSAT formula must be incoherent"
            );
        }
    }

    #[test]
    fn satisfiable_formulas_reduce_to_coherent_instances() {
        for f in [
            cnf(&[&[1]]),
            cnf(&[&[1, 2], &[-1, 2], &[1, -2]]),
            cnf(&[&[1, 2, 3], &[-1, -2, -3], &[1, -2, 3]]),
        ] {
            assert!(solve_cdcl(&f).is_sat(), "formula should be SAT");
            let red = reduce_sat_to_vmc(&f);
            assert!(vmc_coherent(&red.trace).is_coherent());
        }
    }

    #[test]
    fn extracted_assignments_satisfy_the_formula() {
        for seed in 0..30u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 4,
                num_clauses: 8,
                k: 3,
                seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let red = reduce_sat_to_vmc(&f);
            if let Verdict::Coherent(s) = vmc_coherent(&red.trace) {
                let model = red.extract_assignment(&s);
                assert_eq!(
                    f.eval(&model),
                    Some(true),
                    "extracted assignment must satisfy (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn equisatisfiable_on_random_instances() {
        for seed in 0..40u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 3 + (seed % 3) as u32,
                num_clauses: 4 + (seed % 5) as usize,
                k: 2 + (seed % 2) as usize,
                seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let sat = solve_cdcl(&f).is_sat();
            let red = reduce_sat_to_vmc(&f);
            let coherent = vmc_coherent(&red.trace).is_coherent();
            assert_eq!(
                sat, coherent,
                "seed {seed}: SAT={sat} but coherent={coherent}"
            );
        }
    }
}
