//! The Figure 6.2 reduction: SAT → VSCC (§6.3).
//!
//! A SAT instance with `m` variables and `n` clauses becomes a trace with
//! `2m + 3` processes and `m + n + 1` shared locations that is **coherent
//! at every address by construction** (Figure 6.3) yet sequentially
//! consistent iff the formula is satisfiable — witnessing that verifying
//! consistency stays NP-complete even under the coherence promise.
//!
//! * Address `a_{u_i}` per variable; the order of the values `d_X`/`d_Y`
//!   written to it encodes the variable's truth (equation 6.1).
//! * `h₁` writes `d_X` to every variable address, `h₂` writes `d_Y`; after
//!   reading the gate location `a_Δ` both rewrite the opposite values so
//!   false literals can complete.
//! * Literal histories read `(d_X, d_Y)` (or the reverse) from their
//!   variable's address, then write `d_Z` to `a_c` for each clause the
//!   literal satisfies.
//! * `h₃` reads `d_Z` from every clause address and then writes the gate
//!   `a_Δ`.

use vermem_sat::{Cnf, Model, Var};
use vermem_trace::{Addr, Op, OpRef, ProcessHistory, Schedule, Trace, Value};

/// Data value `d_X`.
pub const D_X: Value = Value(1);
/// Data value `d_Y`.
pub const D_Y: Value = Value(2);
/// Data value `d_Z`.
pub const D_Z: Value = Value(3);

/// The constructed VSCC instance.
pub struct VsccReduction {
    /// The multi-address trace (coherent per address by construction).
    pub trace: Trace,
    /// Number of SAT variables.
    pub num_vars: u32,
    /// `h₁`'s initial `W(a_{u_i}, d_X)` per variable.
    pub h1_write: Vec<OpRef>,
    /// `h₂`'s initial `W(a_{u_i}, d_Y)` per variable.
    pub h2_write: Vec<OpRef>,
}

/// The address `a_{u_i}` of variable `i`.
pub fn addr_var(i: u32) -> Addr {
    Addr(i)
}

/// The address `a_{c_j}` of clause `j`.
pub fn addr_clause(num_vars: u32, j: usize) -> Addr {
    Addr(num_vars + j as u32)
}

/// The gate address `a_Δ`.
pub fn addr_gate(num_vars: u32, num_clauses: usize) -> Addr {
    Addr(num_vars + num_clauses as u32)
}

/// Build the Figure 6.2 instance for `cnf`.
pub fn reduce_sat_to_vscc(cnf: &Cnf) -> VsccReduction {
    let m = cnf.num_vars();
    let n = cnf.num_clauses();
    let gate = addr_gate(m, n);
    let mut histories: Vec<ProcessHistory> = Vec::with_capacity(2 * m as usize + 3);

    // h1: W(a_u, d_X) ∀u; R(a_Δ, d_Z); W(a_u, d_Y) ∀u.
    let mut h1 = ProcessHistory::new();
    for i in 0..m {
        h1.push(Op::Write {
            addr: addr_var(i),
            value: D_X,
        });
    }
    h1.push(Op::Read {
        addr: gate,
        value: D_Z,
    });
    for i in 0..m {
        h1.push(Op::Write {
            addr: addr_var(i),
            value: D_Y,
        });
    }
    histories.push(h1);

    // h2: W(a_u, d_Y) ∀u; R(a_Δ, d_Z); W(a_u, d_X) ∀u.
    let mut h2 = ProcessHistory::new();
    for i in 0..m {
        h2.push(Op::Write {
            addr: addr_var(i),
            value: D_Y,
        });
    }
    h2.push(Op::Read {
        addr: gate,
        value: D_Z,
    });
    for i in 0..m {
        h2.push(Op::Write {
            addr: addr_var(i),
            value: D_X,
        });
    }
    histories.push(h2);

    // Literal histories.
    for i in 0..m {
        for positive in [true, false] {
            let (first, second) = if positive { (D_X, D_Y) } else { (D_Y, D_X) };
            let mut h = ProcessHistory::new();
            h.push(Op::Read {
                addr: addr_var(i),
                value: first,
            });
            h.push(Op::Read {
                addr: addr_var(i),
                value: second,
            });
            for (j, clause) in cnf.clauses().iter().enumerate() {
                if clause.contains(&Var(i).lit(positive)) {
                    h.push(Op::Write {
                        addr: addr_clause(m, j),
                        value: D_Z,
                    });
                }
            }
            histories.push(h);
        }
    }

    // h3: R(a_c, d_Z) ∀c; W(a_Δ, d_Z).
    let mut h3 = ProcessHistory::new();
    for j in 0..n {
        h3.push(Op::Read {
            addr: addr_clause(m, j),
            value: D_Z,
        });
    }
    h3.push(Op::Write {
        addr: gate,
        value: D_Z,
    });
    histories.push(h3);

    let trace = Trace::from_histories(histories);
    let h1_write = (0..m).map(|i| OpRef::new(0u16, i)).collect();
    let h2_write = (0..m).map(|i| OpRef::new(1u16, i)).collect();
    VsccReduction {
        trace,
        num_vars: m,
        h1_write,
        h2_write,
    }
}

impl VsccReduction {
    /// Extract the truth assignment from an SC schedule (equation 6.1).
    pub fn extract_assignment(&self, schedule: &Schedule) -> Model {
        let mut pos = std::collections::HashMap::new();
        for (i, &r) in schedule.refs().iter().enumerate() {
            pos.insert(r, i);
        }
        let values = (0..self.num_vars as usize)
            .map(|i| pos[&self.h1_write[i]] < pos[&self.h2_write[i]])
            .collect();
        Model::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_coherence::verify_execution;
    use vermem_consistency::{solve_sc_backtracking, KernelConfig};
    use vermem_sat::{solve_cdcl, Lit};

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    fn sc(trace: &Trace) -> bool {
        solve_sc_backtracking(trace, &KernelConfig::default()).is_consistent()
    }

    #[test]
    fn instance_shape_matches_paper() {
        let f = cnf(&[&[1, 2], &[-1, 2]]);
        let red = reduce_sat_to_vscc(&f);
        // 2m+3 processes, m+n+1 addresses.
        assert_eq!(red.trace.num_procs(), 2 * 2 + 3);
        assert_eq!(red.trace.addresses().len(), 2 + 2 + 1);
    }

    #[test]
    fn coherent_by_construction_regardless_of_satisfiability() {
        // Figure 6.3: even for UNSAT formulas every address is coherent.
        for f in [cnf(&[&[1], &[-1]]), cnf(&[&[1, 2], &[-1, 2]])] {
            let red = reduce_sat_to_vscc(&f);
            assert!(
                verify_execution(&red.trace).is_coherent(),
                "VSCC instance must satisfy the coherence promise"
            );
        }
    }

    #[test]
    fn satisfiable_iff_sequentially_consistent() {
        for (f, expect) in [
            (cnf(&[&[1]]), true),
            (cnf(&[&[1, 2], &[-1, 2], &[1, -2]]), true),
            (cnf(&[&[1], &[-1]]), false),
            (cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]), false),
        ] {
            assert_eq!(solve_cdcl(&f).is_sat(), expect);
            let red = reduce_sat_to_vscc(&f);
            assert_eq!(sc(&red.trace), expect, "equisatisfiability violated");
        }
    }

    #[test]
    fn extracted_assignments_satisfy() {
        for seed in 0..15u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 3,
                num_clauses: 5,
                k: 2,
                seed: 900 + seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let red = reduce_sat_to_vscc(&f);
            let verdict = solve_sc_backtracking(&red.trace, &KernelConfig::default());
            if let Some(s) = verdict.schedule() {
                let model = red.extract_assignment(s);
                assert_eq!(f.eval(&model), Some(true), "seed {seed}");
            } else {
                assert!(!solve_cdcl(&f).is_sat(), "seed {seed}");
            }
        }
    }

    #[test]
    fn equisatisfiable_on_random_instances() {
        for seed in 0..15u64 {
            let cfg = vermem_sat::random::RandomSatConfig {
                num_vars: 2,
                num_clauses: 4,
                k: 2,
                seed: 1200 + seed,
            };
            let f = vermem_sat::random::gen_random_ksat(&cfg);
            let red = reduce_sat_to_vscc(&f);
            assert_eq!(sc(&red.trace), solve_cdcl(&f).is_sat(), "seed {seed}");
        }
    }
}
