//! Counting-allocator harness for `vermem_util::densemap`.
//!
//! The dense structures promise *steady-state* allocation freedom: they
//! allocate only to grow past a high-water mark, never for churn at a
//! reached mark. This binary installs a counting `#[global_allocator]`
//! and asserts exactly that — warm each structure up to its working set,
//! then run thousands of churn rounds and require the allocation counter
//! to stay put. (The library crates `forbid(unsafe_code)`; the allocator
//! shim lives here, in an integration-test binary, where the forbid does
//! not apply.)
//!
//! The binary is `harness = false`: libtest's own threads (output
//! capture, timing) allocate and would race the process-global counter,
//! so the whole check runs as a plain single-threaded `main()`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use vermem_util::densemap::{Arena, DenseMap, Slab};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Count allocations across `f`, returning `(delta, result)`.
fn counting<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocs();
    let r = f();
    (allocs() - before, r)
}

const KEYS: u64 = 1024;
const ROUNDS: u64 = 2_000;

fn main() {
    // --- DenseMap: full insert/lookup/remove churn over a fixed key set.
    let mut map: DenseMap<u64, u64> = DenseMap::new();
    let (warm, ()) = counting(|| {
        for k in 0..KEYS {
            map.insert(k, k);
        }
    });
    assert!(warm > 0, "the counter must see the warmup growth");
    for k in 0..KEYS {
        assert_eq!(map.remove(k), Some(k));
    }
    let (delta, ()) = counting(|| {
        for round in 0..ROUNDS {
            for k in 0..KEYS {
                map.insert(k, k ^ round);
            }
            for k in 0..KEYS {
                assert_eq!(map.get(k), Some(&(k ^ round)));
            }
            for k in 0..KEYS {
                map.remove(k);
            }
        }
    });
    assert_eq!(delta, 0, "DenseMap steady-state churn allocated");

    // --- Slab: insert/remove churn through the LIFO free list.
    let mut slab: Slab<u64> = Slab::new();
    let mut idxs: Vec<u32> = Vec::with_capacity(KEYS as usize);
    for k in 0..KEYS {
        idxs.push(slab.insert(k));
    }
    for &i in &idxs {
        slab.remove(i);
    }
    let (delta, ()) = counting(|| {
        for _ in 0..ROUNDS {
            idxs.clear();
            for k in 0..KEYS {
                idxs.push(slab.insert(k));
            }
            for &i in &idxs {
                assert!(slab.remove(i).is_some());
            }
        }
    });
    assert_eq!(delta, 0, "Slab steady-state churn allocated");

    // --- Arena: alloc/free of capacity-carrying collections. Warm one
    // buffer up to 256 elements; every later alloc round reuses it.
    let mut arena: Arena<Vec<u64>> = Arena::new();
    let mut v = arena.alloc();
    v.extend(0..256u64);
    arena.free(v);
    let (delta, ()) = counting(|| {
        for _ in 0..ROUNDS {
            let mut v = arena.alloc();
            assert!(v.is_empty());
            v.extend(0..256u64);
            arena.free(v);
        }
    });
    assert_eq!(delta, 0, "Arena steady-state churn allocated");

    println!("densemap_alloc: steady-state churn allocated 0 times — ok");
}
