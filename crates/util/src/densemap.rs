//! Dense, index-addressed storage for allocation-free hot paths.
//!
//! The streaming verifier's per-event work used to be dominated by
//! `std::collections::HashMap` traffic: SipHash on every probe, a heap
//! allocation per new key's bucket list, and pointer-chasing loads per
//! lookup. This module provides the three flat building blocks the dense
//! hot paths are rebuilt on:
//!
//! * [`DenseMap`] — an open-addressing hash map specialized for small
//!   integer keys (`u16`/`u32`/`u64` newtypes like `Addr` and `Value`),
//!   using the frozen Fx multiply-xor recipe from [`crate::hash`] instead
//!   of SipHash, linear probing over a power-of-two table, and
//!   backward-shift deletion (no tombstones, so probe chains never rot).
//! * [`Slab`] — stable `u32`-indexed storage with a free list: `insert`
//!   reuses the slot of the most recently removed entry, so a workload
//!   that churns entries reaches a high-water mark and then never
//!   allocates again.
//! * [`Arena`] — a recycler for scratch collections (bucket lists, queues):
//!   [`Arena::free`] clears a collection and shelves it,
//!   [`Arena::alloc`] hands it back with its capacity intact.
//!
//! Steady-state discipline: every structure here allocates only to *grow*.
//! Once a table, slab, or recycled collection has reached the working-set
//! high-water mark, further insert/remove/probe cycles perform zero heap
//! allocation — asserted by the counting-allocator harness in
//! `tests/densemap_alloc.rs` and relied on by the `coherence::stream`
//! ingest path.
//!
//! Iteration order over a [`DenseMap`] or [`Slab`] is unspecified (as for
//! any hash map); nothing downstream may depend on it. The per-key hash
//! values come from the frozen Fx stream ([`crate::hash`]'s KAT policy).

use crate::hash::fx_hash_one;

/// Keys a [`DenseMap`] accepts: cheap, copyable, and hashable as one
/// 64-bit word through the frozen Fx recipe.
pub trait DenseKey: Copy + Eq {
    /// The key as a 64-bit word (the hash input).
    fn as_u64(self) -> u64;
}

impl DenseKey for u16 {
    #[inline]
    fn as_u64(self) -> u64 {
        u64::from(self)
    }
}

impl DenseKey for u32 {
    #[inline]
    fn as_u64(self) -> u64 {
        u64::from(self)
    }
}

impl DenseKey for u64 {
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
}

impl DenseKey for usize {
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
}

/// Open-addressing hash map for integer keys on the Fx hash stream.
///
/// Linear probing over a power-of-two slot array; max load factor 7/8;
/// deletion backward-shifts the following probe chain instead of leaving
/// tombstones. Lookups cost one multiply plus a short linear scan — no
/// SipHash, no per-entry allocation.
#[derive(Clone, Debug)]
pub struct DenseMap<K: DenseKey, V> {
    /// `None` = empty slot; `Some((k, v))` = occupied.
    slots: Vec<Option<(K, V)>>,
    len: usize,
    /// `slots.len() - 1` (capacity is always a power of two, or 0).
    mask: usize,
}

impl<K: DenseKey, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: DenseKey, V> DenseMap<K, V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
            mask: 0,
        }
    }

    /// An empty map pre-sized for `cap` entries without rehashing.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = Self::new();
        if cap > 0 {
            m.grow_to(slots_for(cap));
        }
        m
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry, keeping the table's capacity.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    #[inline]
    fn slot_of(&self, key: K) -> usize {
        (fx_hash_one(&key.as_u64()) as usize) & self.mask
    }

    /// Index of `key`'s slot, or of the empty slot its probe chain ends at.
    #[inline]
    fn probe(&self, key: K) -> usize {
        let mut i = self.slot_of(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return i,
                Some(_) => i = (i + 1) & self.mask,
                None => return i,
            }
        }
    }

    /// A reference to the value at `key`.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.probe(key)].as_ref().map(|(_, v)| v)
    }

    /// A mutable reference to the value at `key`.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(key);
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// True if `key` is present.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key → value`; returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.reserve_one();
        let i = self.probe(key);
        match &mut self.slots[i] {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            slot @ None => {
                *slot = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value at `key`, inserting `make()` first when absent.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let i = self.probe(key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, make()));
            self.len += 1;
        }
        self.slots[i].as_mut().map(|(_, v)| v).expect("occupied")
    }

    /// Remove `key`, returning its value. Backward-shifts the following
    /// probe chain so no tombstone is left behind.
    pub fn remove(&mut self, key: K) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(key);
        let (_, value) = self.slots[i].take()?;
        self.len -= 1;
        // Backward-shift deletion: walk the chain after the hole; any entry
        // whose home slot is "at or before" the hole (cyclically) moves in.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.slot_of(*k);
            // `j` may fill `hole` iff `home` is not in the half-open cyclic
            // range `(hole, j]` — i.e. moving it back never skips its home.
            let dist_home = j.wrapping_sub(home) & self.mask;
            let dist_hole = j.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        Some(value)
    }

    /// Drain every entry as `(key, value)` in unspecified order, leaving
    /// the map empty (capacity retained).
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> + '_ {
        self.len = 0;
        self.slots.iter_mut().filter_map(|s| s.take())
    }

    /// Iterate `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterate `(key, &mut value)` in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(k, v)| (*k, &mut *v)))
    }

    /// Iterate the keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate the values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Grow when the next insert would cross the 7/8 load factor.
    #[inline]
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.grow_to(8);
        } else if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow_to(self.slots.len() * 2);
        }
    }

    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(
            &mut self.slots,
            std::iter::repeat_with(|| None).take(new_cap).collect(),
        );
        self.mask = new_cap - 1;
        for (k, v) in old.into_iter().flatten() {
            let mut i = self.slot_of(k);
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some((k, v));
        }
    }
}

/// Smallest power-of-two slot count that holds `entries` under the 7/8
/// load-factor bound.
fn slots_for(entries: usize) -> usize {
    let mut cap = 8usize;
    while entries * 8 > cap * 7 {
        cap *= 2;
    }
    cap
}

/// Stable-index storage with free-list slot reuse.
///
/// [`Slab::insert`] returns a `u32` index that stays valid until the entry
/// is [`Slab::remove`]d; removed slots are recycled LIFO, so churny
/// workloads stop allocating once the live high-water mark is reached.
#[derive(Clone, Debug, Default)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list (`u32::MAX` = empty).
    free_head: u32,
    len: usize,
}

#[derive(Clone, Debug)]
enum Entry<T> {
    Occupied(T),
    /// Next free slot index (`u32::MAX` terminates the list).
    Free(u32),
}

/// Sentinel terminating a [`Slab`] free list.
const NIL: u32 = u32::MAX;

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.entries[idx as usize] {
                Entry::Free(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.entries[idx as usize] = Entry::Occupied(value);
            idx
        } else {
            assert!(self.entries.len() < NIL as usize, "slab full");
            self.entries.push(Entry::Occupied(value));
            (self.entries.len() - 1) as u32
        }
    }

    /// The entry at `idx`, if live.
    #[inline]
    pub fn get(&self, idx: u32) -> Option<&T> {
        match self.entries.get(idx as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// The entry at `idx`, mutably, if live.
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        match self.entries.get_mut(idx as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Remove and return the entry at `idx`; its slot joins the free list.
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        match self.entries.get_mut(idx as usize) {
            Some(e @ Entry::Occupied(_)) => {
                let old = std::mem::replace(e, Entry::Free(self.free_head));
                self.free_head = idx;
                self.len -= 1;
                match old {
                    Entry::Occupied(v) => Some(v),
                    Entry::Free(_) => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Iterate `(index, &entry)` over live entries, ascending by index.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(v) => Some((i as u32, v)),
                Entry::Free(_) => None,
            })
    }

    /// Drain every live entry as `(index, entry)`, ascending by index,
    /// leaving the slab empty (capacity retained).
    pub fn drain(&mut self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.free_head = NIL;
        self.len = 0;
        self.entries
            .drain(..)
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(v) => Some((i as u32, v)),
                Entry::Free(_) => None,
            })
    }
}

/// A recycler for scratch collections: cleared-but-capacitated values are
/// shelved on [`free`](Arena::free) and handed back by
/// [`alloc`](Arena::alloc), so steady-state churn reuses buffers instead
/// of round-tripping the allocator.
#[derive(Clone, Debug)]
pub struct Arena<T: Recycle> {
    shelf: Vec<T>,
}

impl<T: Recycle> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Collections an [`Arena`] can recycle: resettable to empty while keeping
/// their allocation.
pub trait Recycle: Default {
    /// Drop the contents, keep the capacity.
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T> Recycle for std::collections::VecDeque<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T: Recycle> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { shelf: Vec::new() }
    }

    /// A recycled (empty, capacitated) value, or a fresh default.
    pub fn alloc(&mut self) -> T {
        self.shelf.pop().unwrap_or_default()
    }

    /// Clear `value` and shelve it for reuse.
    pub fn free(&mut self, mut value: T) {
        value.recycle();
        self.shelf.push(value);
    }

    /// Number of shelved values.
    pub fn shelved(&self) -> usize {
        self.shelf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DenseMap<u32, String> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a".into()), None);
        assert_eq!(m.insert(7, "b".into()), Some("a".into()));
        assert_eq!(m.get(7).map(String::as_str), Some("b"));
        assert_eq!(m.remove(7), Some("b".into()));
        assert_eq!(m.remove(7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_through_collisions() {
        let mut m: DenseMap<u64, u64> = DenseMap::new();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(&(i * 3)), "key {i}");
        }
        assert_eq!(m.get(10_001), None);
    }

    #[test]
    fn backward_shift_deletion_keeps_chains_probeable() {
        // Insert colliding keys, delete from the middle of the chain, and
        // check everything else still resolves.
        let mut m: DenseMap<u64, u64> = DenseMap::with_capacity(64);
        let keys: Vec<u64> = (0..48).collect();
        for &k in &keys {
            m.insert(k, k + 100);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k + 100));
        }
        for &k in &keys {
            if k % 3 == 0 {
                assert_eq!(m.get(k), None, "deleted key {k}");
            } else {
                assert_eq!(m.get(k), Some(&(k + 100)), "kept key {k}");
            }
        }
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: DenseMap<u16, Vec<u32>> = DenseMap::new();
        m.get_or_insert_with(3, Vec::new).push(1);
        m.get_or_insert_with(3, || panic!("present")).push(2);
        assert_eq!(m.get(3), Some(&vec![1, 2]));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m: DenseMap<u32, u32> = DenseMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        m.insert(5, 5);
        assert_eq!(m.get(5), Some(&5));
    }

    #[test]
    fn drain_empties_but_keeps_capacity() {
        let mut m: DenseMap<u32, u32> = DenseMap::new();
        for i in 0..50 {
            m.insert(i, i * 2);
        }
        let cap = m.slots.len();
        let mut drained: Vec<(u32, u32)> = m.drain().collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..50).map(|i| (i, i * 2)).collect::<Vec<_>>());
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.get(7), None);
        m.insert(7, 9);
        assert_eq!(m.get(7), Some(&9));
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_ne!(a, b);
        assert_eq!(s.remove(a), Some("a".into()));
        let c = s.insert("c".into());
        assert_eq!(c, a, "freed slot must be reused");
        assert_eq!(s.get(c).map(String::as_str), Some("c"));
        assert_eq!(s.get(b).map(String::as_str), Some("b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("c".into()));
        assert_eq!(s.remove(a), None);
    }

    #[test]
    fn slab_drain_yields_live_entries_in_index_order() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let _c = s.insert(30);
        s.remove(a);
        let drained: Vec<(u32, u32)> = s.drain().collect();
        assert_eq!(drained, vec![(1, 20), (2, 30)]);
        assert!(s.is_empty());
        assert_eq!(s.insert(99), 0, "drained slab starts fresh");
    }

    #[test]
    fn arena_recycles_capacity() {
        let mut arena: Arena<Vec<u64>> = Arena::new();
        let mut v = arena.alloc();
        v.extend(0..100);
        let cap = v.capacity();
        arena.free(v);
        assert_eq!(arena.shelved(), 1);
        let v2 = arena.alloc();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap, "capacity must survive recycling");
        assert_eq!(arena.shelved(), 0);
    }

    #[test]
    fn model_check_against_std_hashmap() {
        use crate::prop::PropConfig;
        use crate::prop_check;
        use std::collections::HashMap;

        // Random insert/remove/get scripts, replayed against std HashMap.
        prop_check!(
            PropConfig::with_cases(128).max_size(200),
            |rng, size| {
                (0..size * 4)
                    .map(|_| {
                        let key = rng.gen_range(0..(size as u64 + 1));
                        match rng.gen_range(0..3u32) {
                            0 => (0u8, key, rng.next_u64()),
                            1 => (1u8, key, 0),
                            _ => (2u8, key, 0),
                        }
                    })
                    .collect::<Vec<(u8, u64, u64)>>()
            },
            |script: &Vec<(u8, u64, u64)>| {
                let mut dense: DenseMap<u64, u64> = DenseMap::new();
                let mut model: HashMap<u64, u64> = HashMap::new();
                for &(op, key, val) in script {
                    match op {
                        0 => {
                            crate::prop_assert_eq!(dense.insert(key, val), model.insert(key, val));
                        }
                        1 => {
                            crate::prop_assert_eq!(dense.remove(key), model.remove(&key));
                        }
                        _ => {
                            crate::prop_assert_eq!(dense.get(key), model.get(&key));
                        }
                    }
                    crate::prop_assert_eq!(dense.len(), model.len());
                }
                // Full-content equivalence, both directions.
                for (k, v) in dense.iter() {
                    crate::prop_assert_eq!(Some(v), model.get(&k));
                }
                for (k, v) in &model {
                    crate::prop_assert_eq!(dense.get(*k), Some(v));
                }
                Ok(())
            },
        );
    }
}
