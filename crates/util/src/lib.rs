//! # `vermem-util` — the zero-dependency substrate under every other crate
//!
//! The build environment for this reproduction of *Cantin, Lipasti & Smith,
//! "The complexity of verifying memory coherence" (SPAA 2003)* is fully
//! offline: no registry, no network. This crate replaces the six external
//! crates the workspace used to depend on with small, tested, in-tree
//! substrates so the whole workspace builds and tests hermetically:
//!
//! | module    | replaces            | provides                                            |
//! |-----------|---------------------|-----------------------------------------------------|
//! | [`rng`]   | `rand`              | SplitMix64 + xoshiro256\*\* seedable PRNG           |
//! | [`prop`]  | `proptest`          | `prop_check!` seeded cases + size-descent shrinking |
//! | [`mod@bench`] | `criterion`     | warmup + median/p95 wall-clock bench harness        |
//! | [`codec`] | `bytes` (+ `serde`) | varint/fixed-width binary reader & writer           |
//! | [`hash`]  | `rustc-hash`/`fxhash` | frozen-stream Fx hasher + `FxHashMap`/`FxHashSet` |
//! | [`densemap`] | `slab`/`hashbrown` | open-addressing int-key map, slab, arena recycler |
//! | [`bitset`] | `fixedbitset`      | word-level bit matrix + union/intersect kernels     |
//! | [`pool`]  | `rayon`/`crossbeam` | scoped work-stealing chunk pool with cancellation   |
//! | [`json`]  | `serde_json`        | order-preserving JSON writer + strict parser        |
//! | [`obs`]   | `tracing`/`metrics` | toggleable registry, spans, Chrome-trace, RunReport |
//!
//! (`crossbeam::thread::scope` is replaced directly by [`std::thread::scope`]
//! at its one call site; [`pool`] builds the work-stealing layer on top of
//! it for the parallel verification engine.)
//!
//! ## Seed-stability policy
//!
//! Everything downstream — trace generators, workload simulators, random SAT
//! instances, violation injectors — derives its randomness from
//! [`rng::StdRng::seed_from_u64`]. The algorithm (xoshiro256\*\* seeded by
//! SplitMix64) and its known-answer vectors in this crate's tests are
//! **frozen**: the same seed must produce the identical stream — and hence
//! bit-identical traces, workloads and SAT instances — across releases.
//! Changing the stream is a breaking change and requires bumping the golden
//! vectors *and* every recorded experiment in `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod bitset;
pub mod codec;
pub mod densemap;
pub mod hash;
pub mod intern;
pub mod json;
pub mod obs;
pub mod pool;
pub mod prop;
pub mod rng;
