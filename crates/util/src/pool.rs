//! A scoped work-stealing chunk pool over [`std::thread::scope`].
//!
//! Built for the parallel per-address verification engine: `n` independent
//! indexed tasks (one per address), a fixed worker count, per-worker chunk
//! deques with **chunked stealing** (an idle worker takes half of a
//! victim's remaining chunks in one lock acquisition), and a shared
//! [`CancelToken`] so the first failed task can stop in-flight work early.
//!
//! Zero dependencies and no `unsafe`: deques are `Mutex<VecDeque<usize>>`
//! (locks are touched once per *chunk*, not once per task, so contention
//! is negligible for any sensible chunk size), results are collected
//! worker-locally and scattered by index after the scope joins — callers
//! therefore see results in **task order**, independent of scheduling.
//!
//! ```
//! use vermem_util::pool::{scoped_map, CancelToken};
//! let cancel = CancelToken::new();
//! let out = scoped_map(4, 8, &cancel, |i| i * i);
//! assert_eq!(out, (0..8).map(|i| Some(i * i)).collect::<Vec<_>>());
//! ```

use crate::obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared cooperative cancellation flag.
///
/// Setting it is sticky and race-free (an `AtomicBool`); workers check it
/// between tasks, and long-running tasks may poll it themselves.
///
/// When observability is enabled the token also timestamps the *first*
/// [`cancel`](CancelToken::cancel) call, so workers can report how long
/// cancellation took to propagate (`pool.cancel_latency_us`). When
/// disabled this costs nothing: no clock read, no extra store.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
    /// Obs-epoch microseconds of the first cancel (0 = none recorded).
    cancel_at_us: AtomicU64,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent).
    #[inline]
    pub fn cancel(&self) {
        if obs::enabled() {
            // First cancel wins; `.max(1)` keeps 0 meaning "unset".
            let _ = self.cancel_at_us.compare_exchange(
                0,
                obs::now_us().max(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Obs-epoch timestamp of the first cancel, if observability was
    /// enabled when it fired.
    pub fn cancelled_at_us(&self) -> Option<u64> {
        match self.cancel_at_us.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        }
    }
}

/// The worker count to use when the caller does not specify one:
/// `std::thread::available_parallelism()`, or 1 if unknown.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default chunk size for `n` tasks on `jobs` workers: aim for ~4 chunks
/// per worker so stealing has something to take, with chunks of at least 1.
pub fn default_chunk(n: usize, jobs: usize) -> usize {
    (n / (jobs.max(1) * 4)).max(1)
}

/// Run `task(0..n)` on `jobs` workers and return the results **in task
/// order**. Tasks skipped because `cancel` fired are `None`.
///
/// Guarantees:
/// * every returned `Some` holds exactly `task(i)` for its index `i`;
/// * if `cancel` never fires, every slot is `Some`;
/// * `jobs <= 1` (or `n <= 1`) runs inline on the caller's thread, in
///   index order, with no thread spawned — the deterministic baseline.
///
/// Panics in `task` propagate to the caller after the scope joins.
pub fn scoped_map<R, F>(jobs: usize, n: usize, cancel: &CancelToken, task: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.max(1).min(n);
    if jobs == 1 {
        return (0..n)
            .map(|i| (!cancel.is_cancelled()).then(|| task(i)))
            .collect();
    }

    let chunk = default_chunk(n, jobs);
    let nchunks = n.div_ceil(chunk);
    // Deal chunks round-robin so every worker starts with low-index (often
    // decisive) work and stealing only matters under imbalance.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((0..nchunks).filter(|c| c % jobs == w).collect()))
        .collect();

    let mut collected: Vec<Vec<(usize, R)>> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let deques = &deques;
                let task = &task;
                scope.spawn(move || {
                    // One busy span per worker (its own `tid` track in the
                    // Chrome trace); steal/chunk/task totals are kept in
                    // plain locals and flushed once at worker exit.
                    let mut span = crate::span!("pool.worker");
                    let mut steals = 0u64;
                    let mut chunks = 0u64;
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while !cancel.is_cancelled() {
                        let Some((c, stolen)) = next_chunk(deques, w) else {
                            break;
                        };
                        chunks += 1;
                        steals += u64::from(stolen);
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            if cancel.is_cancelled() {
                                break;
                            }
                            local.push((i, task(i)));
                        }
                    }
                    if span.is_recording() {
                        span.arg("worker", w as u64);
                        span.arg("chunks", chunks);
                        span.arg("steals", steals);
                        span.arg("tasks", local.len() as u64);
                        obs::counter_add("pool.steals", steals);
                        obs::counter_add("pool.chunks", chunks);
                        obs::counter_add("pool.tasks", local.len() as u64);
                        if cancel.is_cancelled() {
                            if let Some(t0) = cancel.cancelled_at_us() {
                                obs::histogram_record(
                                    "pool.cancel_latency_us",
                                    obs::now_us().saturating_sub(t0),
                                );
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            collected.push(h.join().expect("pool worker panicked"));
        }
    });

    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in collected.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "task {i} executed twice");
        out[i] = Some(r);
    }
    out
}

/// Pop the next chunk for worker `w`: front of its own deque, else steal
/// the front half of the next non-empty victim's deque in one lock
/// acquisition. The `bool` is true when the chunk was stolen.
///
/// With observability enabled, the worker's own-queue occupancy after a
/// pop is published as the `pool.queue` gauge (the gauge call happens
/// *after* the deque lock is released).
fn next_chunk(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    let (popped, remaining) = {
        let mut q = deques[w].lock().expect("deque poisoned");
        (q.pop_front(), q.len())
    };
    if let Some(c) = popped {
        crate::gauge!("pool.queue", remaining as u64);
        return Some((c, false));
    }
    let jobs = deques.len();
    for off in 1..jobs {
        let victim = (w + off) % jobs;
        let stolen: Vec<usize> = {
            let mut q = deques[victim].lock().expect("deque poisoned");
            let take = q.len().div_ceil(2);
            q.drain(..take).collect()
        };
        if let Some((&first, rest)) = stolen.split_first() {
            if !rest.is_empty() {
                let mut mine = deques[w].lock().expect("deque poisoned");
                mine.extend(rest.iter().copied());
            }
            return Some((first, true));
        }
    }
    None
}

/// Create a bounded single-producer single-consumer channel for the
/// streaming verifier's shard pipeline: the ingest thread routes decoded
/// events to per-shard queues, one worker drains each.
///
/// `send` applies **backpressure**: when the queue holds `capacity` items
/// it blocks until the consumer catches up (each blocking episode counts
/// into the `pool.spsc.backpressure_waits` counter, and queue depth after
/// every push is published as the `pool.spsc.queue` gauge). Dropping the
/// receiver unblocks a waiting sender with an error; dropping or
/// [`closing`](SpscSender::close) the sender makes `recv` drain the
/// remaining items and then return `None`.
///
/// `Mutex<VecDeque>` + two condvars, no `unsafe` — locks are uncontended
/// in the steady state (one producer, one consumer), and the verifier
/// batches events so the lock is taken once per batch, not per op.
pub fn spsc_channel<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = std::sync::Arc::new(SpscShared {
        state: Mutex::new(SpscState {
            buf: VecDeque::with_capacity(capacity.max(1)),
            closed: false,
        }),
        not_full: std::sync::Condvar::new(),
        not_empty: std::sync::Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        SpscSender {
            shared: shared.clone(),
        },
        SpscReceiver { shared },
    )
}

#[derive(Debug)]
struct SpscState<T> {
    buf: VecDeque<T>,
    closed: bool,
}

#[derive(Debug)]
struct SpscShared<T> {
    state: Mutex<SpscState<T>>,
    not_full: std::sync::Condvar,
    not_empty: std::sync::Condvar,
    capacity: usize,
}

/// Producer half of [`spsc_channel`].
#[derive(Debug)]
pub struct SpscSender<T> {
    shared: std::sync::Arc<SpscShared<T>>,
}

/// Consumer half of [`spsc_channel`].
#[derive(Debug)]
pub struct SpscReceiver<T> {
    shared: std::sync::Arc<SpscShared<T>>,
}

impl<T> SpscSender<T> {
    /// Enqueue `item`, blocking while the queue is full. Returns the item
    /// back if the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut st = self.shared.state.lock().expect("spsc poisoned");
        if st.buf.len() >= self.shared.capacity && !st.closed {
            obs::counter_add("pool.spsc.backpressure_waits", 1);
            while st.buf.len() >= self.shared.capacity && !st.closed {
                st = self.shared.not_full.wait(st).expect("spsc poisoned");
            }
        }
        if st.closed {
            return Err(item);
        }
        st.buf.push_back(item);
        let depth = st.buf.len() as u64;
        drop(st);
        crate::gauge!("pool.spsc.queue", depth);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Signal end of stream: `recv` drains what is buffered, then `None`.
    pub fn close(&self) {
        let mut st = self.shared.state.lock().expect("spsc poisoned");
        st.closed = true;
        drop(st);
        self.shared.not_empty.notify_one();
        self.shared.not_full.notify_one();
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> SpscReceiver<T> {
    /// Dequeue the next item, blocking while the queue is empty; `None`
    /// once the sender has closed and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("spsc poisoned");
        loop {
            if let Some(item) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.shared.not_empty.wait(st).expect("spsc poisoned");
        }
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("spsc poisoned");
        st.closed = true;
        drop(st);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_arrive_in_task_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let cancel = CancelToken::new();
            let out = scoped_map(jobs, 100, &cancel, |i| i * 3);
            assert_eq!(out.len(), 100);
            for (i, r) in out.iter().enumerate() {
                assert_eq!(*r, Some(i * 3), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cancel = CancelToken::new();
        assert!(scoped_map(4, 0, &cancel, |i| i).is_empty());
        assert_eq!(scoped_map(4, 1, &cancel, |i| i + 7), vec![Some(7)]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Task 0 is slow; the rest are instant. With 2 workers all tasks
        // must still complete (the idle worker steals the slow worker's
        // remaining chunks).
        let cancel = CancelToken::new();
        let out = scoped_map(2, 64, &cancel, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert!(out.iter().all(|r| r.is_some()));
    }

    #[test]
    fn cancellation_skips_pending_tasks() {
        // Single worker, cancel fired by task 3: tasks 4.. must be skipped.
        let cancel = CancelToken::new();
        let out = scoped_map(1, 10, &cancel, |i| {
            if i == 3 {
                cancel.cancel();
            }
            i
        });
        assert_eq!(out[3], Some(3));
        for r in &out[4..] {
            assert!(r.is_none());
        }
    }

    #[test]
    fn cancellation_is_cooperative_under_parallelism() {
        // Whatever the interleaving, a cancelled run never runs every task
        // if cancellation fires in the first chunk... timing-dependent, so
        // assert only the invariants: executed tasks have correct values
        // and the canceller's own result is present.
        let executed = AtomicUsize::new(0);
        let cancel = CancelToken::new();
        let out = scoped_map(4, 1000, &cancel, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                cancel.cancel();
            }
            i
        });
        assert_eq!(out[0], Some(0));
        let some = out.iter().flatten().count();
        assert_eq!(some, executed.load(Ordering::Relaxed));
        for (i, r) in out.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn default_chunk_bounds() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(3, 4), 1);
        assert_eq!(default_chunk(64, 4), 4);
        assert_eq!(default_chunk(1000, 1), 250);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn spsc_preserves_fifo_order_across_threads() {
        let (tx, rx) = spsc_channel::<usize>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None); // sender dropped at thread exit
        });
    }

    #[test]
    fn spsc_backpressure_blocks_until_consumer_catches_up() {
        let (tx, rx) = spsc_channel::<usize>(2);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10 {
                    tx.send(i).unwrap();
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Give the producer time to hit the capacity wall.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(sent.load(Ordering::SeqCst) <= 3, "capacity 2 must block");
            for i in 0..10 {
                assert_eq!(rx.recv(), Some(i));
            }
        });
    }

    #[test]
    fn spsc_close_drains_then_ends() {
        let (tx, rx) = spsc_channel::<usize>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.close();
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(tx.send(3), Err(3), "send after close fails");
    }

    #[test]
    fn spsc_receiver_drop_unblocks_sender() {
        let (tx, rx) = spsc_channel::<usize>(1);
        tx.send(0).unwrap();
        drop(rx);
        // Queue is full and the receiver is gone: send must error, not hang.
        assert_eq!(tx.send(1), Err(1));
    }

    #[test]
    fn oversubscription_is_clamped() {
        // More workers than tasks must not spawn idle-deadlocked threads.
        let cancel = CancelToken::new();
        let out = scoped_map(32, 5, &cancel, |i| i);
        assert_eq!(out, (0..5).map(Some).collect::<Vec<_>>());
    }
}
