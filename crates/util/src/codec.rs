//! Hand-rolled binary codec: fixed-width little-endian integers plus LEB128
//! unsigned varints, with a bounds-checked cursor for decoding.
//!
//! Replaces the `bytes` crate's `Buf`/`BufMut` for the trace wire format.
//! Writers append to a plain `Vec<u8>`; readers go through [`Reader`],
//! whose every accessor is total — out-of-bounds reads return
//! [`CodecError::Truncated`] instead of panicking, so a corrupted or
//! adversarial header (e.g. one claiming 2³² operations) can never cause
//! an out-of-bounds access or a giant upfront allocation.
//!
//! ```
//! use vermem_util::codec::{put_u32_le, put_uvarint, Reader};
//!
//! let mut buf = Vec::new();
//! put_u32_le(&mut buf, 0xDEAD_BEEF);
//! put_uvarint(&mut buf, 300);
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.get_u32_le().unwrap(), 0xDEAD_BEEF);
//! assert_eq!(r.get_uvarint().unwrap(), 300);
//! assert_eq!(r.remaining(), 0);
//! ```

/// A decode failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested field was complete.
    Truncated,
    /// A varint encoded a value wider than 64 bits.
    VarintOverflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::VarintOverflow => write!(f, "varint wider than 64 bits"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a byte.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u16`.
#[inline]
pub fn put_u16_le(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
#[inline]
pub fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
#[inline]
pub fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an unsigned LEB128 varint (1 byte for values < 128, at most 10
/// bytes for `u64::MAX`).
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// A bounds-checked decoding cursor over a byte slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn get_u16_le(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn get_u32_le(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn get_u64_le(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an unsigned LEB128 varint.
    #[inline]
    pub fn get_uvarint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let payload = u64::from(byte & 0x7F);
            if shift == 63 && payload > 1 {
                return Err(CodecError::VarintOverflow);
            }
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16_le(&mut buf, 0xBEEF);
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_u64_le(&mut buf, 0x0123_4567_89AB_CDEF);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16_le().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), Err(CodecError::Truncated));
    }

    #[test]
    fn varint_round_trip_boundaries() {
        let cases = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            300,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_uvarint().unwrap(), v, "value {v}");
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u64| {
            let mut b = Vec::new();
            put_uvarint(&mut b, v);
            b.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(0x7F), 1);
        assert_eq!(size(0x80), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: wider than any u64.
        let bad = [0xFFu8; 11];
        assert_eq!(
            Reader::new(&bad).get_uvarint(),
            Err(CodecError::VarintOverflow)
        );
        // 10th byte with payload > 1 overflows the top bit.
        let mut edge = [0x80u8; 10];
        edge[9] = 0x02;
        assert_eq!(
            Reader::new(&edge).get_uvarint(),
            Err(CodecError::VarintOverflow)
        );
        // Dangling continuation bit.
        assert_eq!(
            Reader::new(&[0x80]).get_uvarint(),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn every_truncation_of_a_stream_fails_cleanly() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 7);
        put_uvarint(&mut buf, 1 << 40);
        put_u64_le(&mut buf, 9);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let decoded = r
                .get_u32_le()
                .and_then(|_| r.get_uvarint())
                .and_then(|_| r.get_u64_le());
            assert_eq!(decoded, Err(CodecError::Truncated), "prefix {cut}");
        }
    }
}
