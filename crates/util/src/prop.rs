//! `proptest`-lite: seeded property testing with size-descent shrinking.
//!
//! A property test here is a pair of closures: a **generator**
//! `fn(&mut StdRng, usize) -> T` that builds a random input of roughly the
//! given *size* (the test's only complexity knob), and a **property**
//! `fn(&T) -> Result<(), String>` that accepts or rejects it. The harness
//! runs `cases` iterations, ramping the size from 1 up to `max_size` so
//! early cases are tiny and later ones are stressful, with each case's RNG
//! seeded deterministically from the configured base seed — a failure
//! report is always reproducible by re-running the same test binary.
//!
//! **Shrinking** is *size-descent regeneration*, not structural: when case
//! `i` fails at size `s`, the harness re-generates inputs from the same
//! per-case seed at sizes `0, 1, …, s − 1` (bounded by
//! [`PropConfig::max_shrink_iters`]) and reports the smallest size that
//! still fails. This is weaker than `proptest`'s integrated shrinking but
//! has no per-type machinery, always terminates, and in practice turns
//! "fails on a 40-op trace" into "fails on a 3-op trace".
//!
//! ```
//! use vermem_util::{prop_assert, prop_check};
//! use vermem_util::prop::PropConfig;
//!
//! prop_check!(PropConfig::with_cases(64), |rng, size| {
//!     (0..size).map(|_| rng.gen_range(0..100u32)).collect::<Vec<_>>()
//! }, |xs: &Vec<u32>| {
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     prop_assert!(sorted.len() == xs.len(), "sorting must not lose elements");
//!     Ok(())
//! });
//! ```

use crate::rng::{SplitMix64, StdRng};

/// Configuration for a [`check`] run.
#[derive(Clone, Copy, Debug)]
pub struct PropConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it deterministically.
    pub seed: u64,
    /// Largest size passed to the generator (reached by the final case).
    pub max_size: usize,
    /// Upper bound on regeneration attempts during shrinking.
    pub max_shrink_iters: u32,
}

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig {
            cases: 64,
            seed: 0x5EED_0BAD_CAFE,
            max_size: 24,
            max_shrink_iters: 256,
        }
    }
}

impl PropConfig {
    /// Default configuration with an explicit case count
    /// (mirrors `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        PropConfig {
            cases,
            ..Default::default()
        }
    }

    /// Same configuration with a different base seed.
    pub fn seed(self, seed: u64) -> Self {
        PropConfig { seed, ..self }
    }

    /// Same configuration with a different maximum generator size.
    pub fn max_size(self, max_size: usize) -> Self {
        PropConfig { max_size, ..self }
    }
}

fn case_rng(base_seed: u64, case: u32) -> StdRng {
    // Derive well-separated per-case seeds through SplitMix64 so that
    // consecutive cases do not share stream prefixes.
    let mut sm = SplitMix64::new(base_seed ^ (u64::from(case) << 32 | u64::from(case)));
    StdRng::seed_from_u64(sm.next_u64())
}

/// Run a property over `cfg.cases` generated inputs; panic with a
/// reproducible, shrunk report on the first failure.
///
/// Prefer the [`crate::prop_check!`] macro, which fills in `name` from the
/// call site.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    cfg: &PropConfig,
    mut gen: impl FnMut(&mut StdRng, usize) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    assert!(cfg.cases > 0, "prop_check: need at least one case");
    for case in 0..cfg.cases {
        // Ramp size 1 → max_size across the run (at least 1 so the common
        // "generate size elements" pattern is exercised from the start).
        let size = if cfg.cases == 1 {
            cfg.max_size
        } else {
            1 + (case as usize * cfg.max_size.saturating_sub(1)) / (cfg.cases as usize - 1)
        };
        let input = gen(&mut case_rng(cfg.seed, case), size);
        if let Err(msg) = prop(&input) {
            let (min_size, min_input, min_msg) =
                shrink(cfg, case, size, input, msg, &mut gen, &mut prop);
            panic!(
                "property `{name}` failed\n\
                 \x20 case:          {case}/{}\n\
                 \x20 base seed:     {:#x}\n\
                 \x20 failing size:  {size} (shrunk to {min_size})\n\
                 \x20 minimal input: {min_input:?}\n\
                 \x20 failure:       {min_msg}",
                cfg.cases, cfg.seed,
            );
        }
    }
}

/// Size-descent shrinking: regenerate the failing case at ascending smaller
/// sizes and return the smallest still-failing input.
fn shrink<T: std::fmt::Debug>(
    cfg: &PropConfig,
    case: u32,
    failing_size: usize,
    failing_input: T,
    failing_msg: String,
    gen: &mut impl FnMut(&mut StdRng, usize) -> T,
    prop: &mut impl FnMut(&T) -> Result<(), String>,
) -> (usize, T, String) {
    let budget = (cfg.max_shrink_iters as usize).min(failing_size);
    for size in 0..budget {
        let candidate = gen(&mut case_rng(cfg.seed, case), size);
        if let Err(msg) = prop(&candidate) {
            return (size, candidate, msg);
        }
    }
    (failing_size, failing_input, failing_msg)
}

/// Run a property test: `prop_check!(config, generator, property)`.
///
/// `generator` is `|rng: &mut StdRng, size: usize| -> T`; `property` is
/// `|input: &T| -> Result<(), String>` (use [`crate::prop_assert!`] /
/// [`crate::prop_assert_eq!`] inside it). The test name in failure reports
/// is the macro call's `file:line`.
#[macro_export]
macro_rules! prop_check {
    ($cfg:expr, $gen:expr, $prop:expr $(,)?) => {
        $crate::prop::check(concat!(file!(), ":", line!()), &$cfg, $gen, $prop)
    };
}

/// `proptest`-style assertion for use inside a [`crate::prop_check!`]
/// property closure: returns `Err(String)` instead of panicking, so the
/// harness can shrink before reporting.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Equality counterpart of [`crate::prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?} — {}",
                file!(), line!(), l, r, format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0u32;
        check(
            "always-true",
            &PropConfig::with_cases(10),
            |rng, size| (0..size).map(|_| rng.next_u64()).collect::<Vec<_>>(),
            |_| {
                runs += 1;
                Ok(())
            },
        );
        assert_eq!(runs, 10);
    }

    #[test]
    fn failing_property_panics_with_shrunk_report() {
        let result = std::panic::catch_unwind(|| {
            check(
                "len-under-5",
                &PropConfig {
                    cases: 32,
                    seed: 1,
                    max_size: 20,
                    max_shrink_iters: 64,
                },
                |rng, size| {
                    (0..size)
                        .map(|_| rng.gen_range(0..10u32))
                        .collect::<Vec<_>>()
                },
                |v| {
                    if v.len() >= 5 {
                        Err(format!("len {} >= 5", v.len()))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        // Size-descent must find the minimal failing size, 5.
        assert!(msg.contains("shrunk to 5"), "report was: {msg}");
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let collect = || {
            let mut seen = Vec::new();
            check(
                "collect",
                &PropConfig {
                    cases: 5,
                    seed: 99,
                    max_size: 8,
                    max_shrink_iters: 0,
                },
                |rng, size| (0..size).map(|_| rng.next_u64()).collect::<Vec<_>>(),
                |v| {
                    seen.push(v.clone());
                    Ok(())
                },
            );
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn size_ramps_from_one_to_max() {
        let mut sizes = Vec::new();
        check(
            "sizes",
            &PropConfig {
                cases: 7,
                seed: 0,
                max_size: 13,
                max_shrink_iters: 0,
            },
            |_, size| size,
            |&s| {
                sizes.push(s);
                Ok(())
            },
        );
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&13));
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }
}
