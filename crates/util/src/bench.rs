//! Criterion-compatible-ish wall-clock benchmark harness.
//!
//! Drop-in for the subset of the `criterion` API the workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! [`BenchmarkId`], element throughput, and `Bencher::iter`. A bench file
//! ports by changing one import line.
//!
//! ## Methodology
//!
//! For each benchmark the harness:
//!
//! 1. **Calibrates**: runs the routine once (always), then repeatedly for
//!    ≥ 5 ms to estimate the per-iteration cost;
//! 2. **Batches**: picks an iteration count per sample so one sample takes
//!    roughly `target_ms / samples` of wall time (at least 1 iteration);
//! 3. **Samples**: collects `samples` timed batches and reports the
//!    per-iteration **min / median / p95** plus throughput if configured.
//!
//! Medians are robust to scheduler noise; p95 exposes tail effects
//! (allocator, cache). There is no statistical regression testing — for
//! that, compare printed medians across runs pinned to the same machine.
//!
//! Environment knobs: `VERMEM_BENCH_SAMPLES` (default 20),
//! `VERMEM_BENCH_TARGET_MS` total measured time per benchmark (default
//! 200), and `VERMEM_BENCH_FAST=1` (3 samples, 10 ms — smoke mode for CI).
//! A non-flag CLI argument filters benchmarks by substring, like Criterion.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state: global configuration plus the CLI filter.
#[derive(Clone, Debug)]
pub struct Criterion {
    samples: usize,
    target: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 20,
            target: Duration::from_millis(200),
            filter: None,
        }
    }
}

impl Criterion {
    /// Build from environment variables and CLI arguments (flags such as
    /// `--bench`, passed by `cargo bench`, are ignored; the first non-flag
    /// argument becomes a substring filter).
    pub fn from_env() -> Self {
        let mut c = Criterion::default();
        if std::env::var_os("VERMEM_BENCH_FAST").is_some_and(|v| v != "0") {
            c.samples = 3;
            c.target = Duration::from_millis(10);
        }
        if let Some(n) = std::env::var("VERMEM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            c.samples = n;
        }
        if let Some(ms) = std::env::var("VERMEM_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            c.target = Duration::from_millis(ms);
        }
        c.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        c
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
            printed_header: false,
        }
    }
}

/// Units for reporting how much work one iteration performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier inside a group: `group/name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solver", 64)` → `solver/64`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter, e.g. `64`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    c: &'c Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    printed_header: bool,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = Some(n);
        self
    }

    /// Declare per-iteration throughput so reports include elements/sec.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a routine that receives a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self
            .c
            .filter
            .as_deref()
            .is_some_and(|needle| !full.contains(needle))
        {
            return self;
        }
        if !self.printed_header {
            println!("\n{}", self.name);
            self.printed_header = true;
        }
        let samples = self.sample_size.unwrap_or(self.c.samples);
        let mut b = Bencher {
            samples,
            target: self.c.target,
            stats: None,
        };
        f(&mut b, input);
        let stats = b.stats.expect("benchmark routine must call Bencher::iter");
        report(&full, &stats, self.throughput);
        self
    }

    /// Benchmark a routine with no prepared input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, _: &()| f(b))
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Per-iteration timing statistics, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// 95th-percentile sample.
    pub p95: f64,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Number of samples.
    pub samples: usize,
}

/// Passed to the benchmark routine; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    samples: usize,
    target: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measure `routine`, batching iterations per the module methodology.
    /// The routine's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: one mandatory run, then keep running for >= 5 ms.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            black_box(routine());
            calib_iters += 1;
            if calib_start.elapsed() >= Duration::from_millis(5) {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;

        // Batch so that all samples together fill the time budget.
        let sample_secs = self.target.as_secs_f64() / self.samples as f64;
        let iters = ((sample_secs / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        self.stats = Some(Stats {
            min: samples[0],
            median: pick(0.5),
            p95: pick(0.95),
            iters_per_sample: iters,
            samples: samples.len(),
        });
    }
}

fn report(name: &str, s: &Stats, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}/s", si(n as f64 / s.median, "elem"))
        }
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}/s", si(n as f64 / s.median, "B")),
        None => String::new(),
    };
    println!(
        "  {name:<44} time: [min {:>10}  median {:>10}  p95 {:>10}]  ({} samples × {} iters){thrpt}",
        fmt_secs(s.min),
        fmt_secs(s.median),
        fmt_secs(s.p95),
        s.samples,
        s.iters_per_sample,
    );
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Define a benchmark group function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running one or more [`crate::criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_env();
            $( $group(&mut c); )+
        }
    };
}

// Re-export the macros under `vermem_util::bench::` so bench files can use
// one flat import list, mirroring `criterion::{criterion_group, ...}`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_ordered_stats() {
        let mut b = Bencher {
            samples: 5,
            target: Duration::from_millis(5),
            stats: None,
        };
        b.iter(|| black_box(2u64.wrapping_mul(3)));
        let s = b.stats.expect("stats recorded");
        assert!(s.min <= s.median && s.median <= s.p95);
        assert!(s.iters_per_sample >= 1);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("solver", 64).id, "solver/64");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn group_runs_and_respects_filter() {
        let mut c = Criterion {
            samples: 2,
            target: Duration::from_millis(2),
            filter: Some("match-me".into()),
        };
        let mut g = c.benchmark_group("g");
        let mut ran = 0;
        g.bench_function(BenchmarkId::from_parameter("match-me"), |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1));
        });
        g.bench_function(BenchmarkId::from_parameter("skipped"), |b| {
            ran += 10;
            b.iter(|| black_box(1 + 1));
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500 µs");
        assert_eq!(fmt_secs(2.5e-9), "2.5 ns");
        assert_eq!(si(3.2e9, "elem"), "3.20 Gelem");
        assert_eq!(si(12.0, "B"), "12.00 B");
    }
}
