//! Lock-free rolling time-series: a ring of rotation epochs, each holding
//! an atomic log2 histogram, plus a lifetime total that never resets.
//!
//! The batch registry ([`super::registry`]) answers "what happened over
//! the whole run"; a long-lived `vermem serve` process needs "what is
//! happening *now*" — sliding ops/s and windowed p50/p90/p99 over the
//! last N rotation epochs, scrape-able while the run is in flight. This
//! module provides that without touching the global obs mutex:
//!
//! * [`AtomicHistogram`] mirrors [`Histogram`]'s log2 layout in atomic
//!   cells, so recording is a handful of relaxed RMW operations — no lock,
//!   safe to call from every shard thread concurrently (lock-free in the
//!   literal sense: every operation is a bounded sequence of atomic RMWs).
//! * [`TimeSeries`] is a fixed ring of epochs advanced by
//!   [`TimeSeries::rotate`]. Recording lands in the current epoch *and* a
//!   lifetime total; [`TimeSeries::windowed`] merges the retained epochs
//!   into a plain [`Histogram`] for percentile queries, and
//!   [`TimeSeries::rate_per_sec`] derives the sliding throughput.
//!
//! Two contracts, both proven by tests below:
//!
//! 1. **Monotone totals**: [`TimeSeries::total`] never decreases across
//!    rotations, and merging the windowed epochs preserves per-epoch
//!    totals (the `prop_check!` property).
//! 2. **Zero coupling to the disabled path**: nothing here is called by
//!    the `counter!`/`gauge!`/`histogram!`/`span!` macros, so the
//!    disabled-path budget (one relaxed load) is untouched. Clock reads
//!    are the caller's job — every timestamp arrives as a `now_us`
//!    parameter (use [`super::now_us`] behind an [`super::enabled`]
//!    check), keeping the module tree's single-`Instant::now` rule intact.
//!
//! Snapshots taken while another thread records are *eventually
//! consistent*: `count`, `sum` and the buckets are loaded independently,
//! so a concurrent snapshot may be off by in-flight samples. That is fine
//! for metrics (they are a side channel, never a verdict input); the
//! rotation owner should quiesce recorders only if it needs exact cuts.

use super::registry::{bucket_of, Histogram, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free log2-bucketed histogram: the atomic mirror of
/// [`Histogram`], recordable from any number of threads without a lock.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` when empty (same sentinel as [`Histogram`]).
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// A fresh, empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }

    /// Record one sample: five relaxed atomic RMWs, no lock, no allocation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate like the locked registry does (a CAS loop, still
        // lock-free: some thread always makes progress).
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the cells into a plain [`Histogram`] for percentile queries.
    /// Eventually consistent under concurrent recording (see module docs).
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = cell.load(Ordering::Relaxed);
        }
        Histogram::from_raw(
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
            buckets,
        )
    }

    /// Reset every cell to empty. Only the rotation owner calls this; a
    /// sample racing the clear may land in either epoch (never lost from
    /// the lifetime total, which is a different cell).
    fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for cell in &self.buckets {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// One rotation epoch: its histogram and the timestamp it opened.
#[derive(Debug)]
struct Epoch {
    hist: AtomicHistogram,
    /// Microseconds (caller clock) when this epoch opened; `u64::MAX`
    /// while the slot has never been used.
    start_us: AtomicU64,
}

/// A rolling time-series: a fixed ring of [`AtomicHistogram`] epochs plus
/// a lifetime total. All methods take `&self` — share it behind an `Arc`
/// between recorder threads and a scrape endpoint.
#[derive(Debug)]
pub struct TimeSeries {
    epochs: Box<[Epoch]>,
    /// Total [`TimeSeries::rotate`] calls; current slot is `cursor % N`.
    cursor: AtomicU64,
    total: AtomicHistogram,
}

impl TimeSeries {
    /// A series retaining `window` epochs (the current one plus the
    /// `window - 1` most recently closed). `window` is clamped to ≥ 1.
    /// `now_us` stamps the first epoch (pass [`super::now_us`]).
    pub fn new(window: usize, now_us: u64) -> TimeSeries {
        let epochs: Vec<Epoch> = (0..window.max(1))
            .map(|i| Epoch {
                hist: AtomicHistogram::new(),
                start_us: AtomicU64::new(if i == 0 { now_us } else { u64::MAX }),
            })
            .collect();
        TimeSeries {
            epochs: epochs.into_boxed_slice(),
            cursor: AtomicU64::new(0),
            total: AtomicHistogram::new(),
        }
    }

    /// Number of retained epochs (the ring size).
    pub fn window(&self) -> usize {
        self.epochs.len()
    }

    /// Rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    fn current(&self) -> &Epoch {
        let slot = self.cursor.load(Ordering::Relaxed) as usize % self.epochs.len();
        &self.epochs[slot]
    }

    /// Record one sample into the current epoch and the lifetime total.
    pub fn record(&self, value: u64) {
        self.current().hist.record(value);
        self.total.record(value);
    }

    /// Close the current epoch and open the next ring slot (evicting the
    /// oldest retained epoch). Call on a fixed cadence — per chunk, per
    /// second — from the single rotation owner.
    pub fn rotate(&self, now_us: u64) {
        let next = self.cursor.load(Ordering::Relaxed).wrapping_add(1);
        let slot = next as usize % self.epochs.len();
        // Clear the evicted slot *before* publishing the new cursor so a
        // racing recorder never lands a sample in stale-then-cleared state.
        self.epochs[slot].hist.clear();
        self.epochs[slot].start_us.store(now_us, Ordering::Relaxed);
        self.cursor.store(next, Ordering::SeqCst);
    }

    /// Merge the retained epochs into one [`Histogram`] — the windowed
    /// view behind sliding p50/p90/p99.
    pub fn windowed(&self) -> Histogram {
        let mut merged = Histogram::new();
        for e in self.epochs.iter() {
            if e.start_us.load(Ordering::Relaxed) != u64::MAX {
                merged.merge(&e.hist.snapshot());
            }
        }
        merged
    }

    /// The lifetime histogram (never reset by rotation).
    pub fn total(&self) -> Histogram {
        self.total.snapshot()
    }

    /// Sliding throughput: samples retained in the window divided by the
    /// window's wall-clock span (oldest retained epoch start → `now_us`),
    /// in samples per second. 0 while the window is empty.
    pub fn rate_per_sec(&self, now_us: u64) -> u64 {
        let count = self.windowed().count();
        if count == 0 {
            return 0;
        }
        let oldest = self
            .epochs
            .iter()
            .map(|e| e.start_us.load(Ordering::Relaxed))
            .filter(|&s| s != u64::MAX)
            .min()
            .unwrap_or(now_us);
        let span_us = now_us.saturating_sub(oldest).max(1);
        count.saturating_mul(1_000_000) / span_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::PropConfig;
    use crate::prop_check;

    #[test]
    fn atomic_histogram_matches_locked_histogram() {
        let a = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 1000, u64::MAX, 42, 42] {
            a.record(v);
            h.record(v);
        }
        assert_eq!(a.snapshot(), h);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let series = std::sync::Arc::new(TimeSeries::new(4, 0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&series);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        s.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(series.total().count(), 4000);
        assert_eq!(series.windowed().count(), 4000);
    }

    #[test]
    fn rotation_evicts_oldest_epoch_but_not_the_total() {
        let s = TimeSeries::new(3, 0);
        for round in 0..5u64 {
            s.record(round + 1);
            s.rotate((round + 1) * 1_000_000);
        }
        // Ring of 3: only the last rounds remain in the window…
        assert!(s.windowed().count() <= 3);
        // …but the lifetime total saw everything.
        assert_eq!(s.total().count(), 5);
        assert_eq!(s.rotations(), 5);
    }

    #[test]
    fn windowed_percentiles_track_recent_samples() {
        let s = TimeSeries::new(2, 0);
        for _ in 0..100 {
            s.record(1_000_000); // old, slow epoch
        }
        s.rotate(1);
        s.rotate(2); // evicts the slow epoch
        for _ in 0..100 {
            s.record(10);
        }
        assert!(s.windowed().p99() < 1000, "p99 {}", s.windowed().p99());
        assert_eq!(s.total().count(), 200);
    }

    #[test]
    fn rate_is_samples_over_window_span() {
        let s = TimeSeries::new(4, 0);
        for _ in 0..500 {
            s.record(1);
        }
        // 500 samples over 0.5 s → 1000/s.
        assert_eq!(s.rate_per_sec(500_000), 1000);
        assert_eq!(TimeSeries::new(4, 0).rate_per_sec(1_000_000), 0);
    }

    #[test]
    fn rotating_and_merging_preserves_totals() {
        // The satellite property: over any interleaving of records and
        // rotations, (a) the lifetime total equals every sample ever
        // recorded and never decreases, and (b) the windowed merge equals
        // the sum of the retained epochs' counts — merge never invents or
        // drops samples.
        prop_check!(
            PropConfig::with_cases(48),
            |rng, size| {
                let window = rng.gen_range(1..5usize);
                let ops: Vec<Option<u64>> = (0..size * 4)
                    .map(|_| {
                        if rng.gen_range(0..4u32) == 0 {
                            None // rotate
                        } else {
                            Some(rng.gen_range(0..1_000_000u64))
                        }
                    })
                    .collect();
                (window, ops)
            },
            |input: &(usize, Vec<Option<u64>>)| {
                let (window, ops) = input;
                let s = TimeSeries::new(*window, 0);
                let mut recorded = 0u64;
                let mut last_total = 0u64;
                let mut clock = 0u64;
                for op in ops {
                    match op {
                        Some(v) => {
                            s.record(*v);
                            recorded += 1;
                        }
                        None => {
                            clock += 1000;
                            s.rotate(clock);
                        }
                    }
                    let total = s.total().count();
                    crate::prop_assert!(
                        total >= last_total,
                        "total decreased: {last_total} -> {total}"
                    );
                    last_total = total;
                    crate::prop_assert_eq!(total, recorded);
                    crate::prop_assert!(
                        s.windowed().count() <= recorded,
                        "windowed exceeds recorded"
                    );
                }
                Ok(())
            },
        );
    }
}
