//! Deterministic exposition encoders over the metrics registry: the
//! Prometheus text format and a JSON snapshot, both built on the in-tree
//! [`crate::json`] writer — no serde, no external formats crate.
//!
//! Everything here is a pure function of a [`MetricsSnapshot`], so output
//! order is exactly the registry's `BTreeMap` order: two snapshots with
//! equal contents render byte-identical documents (diffable scrapes, the
//! same property [`super::report::RunReport`] guarantees).
//!
//! Name mapping: registry names are dotted (`stream.retired_ops`);
//! Prometheus names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
//! [`sanitize_metric_name`] rewrites every illegal byte to `_` and the
//! whole family gets a `vermem_` prefix (`vermem_stream_retired_ops`).
//!
//! * Counters → `# TYPE … counter` with the accumulated value.
//! * Gauges → `# TYPE … gauge` for the last value, plus `…_max` and
//!   `…_samples` companions.
//! * Histograms → `# TYPE … histogram`: cumulative `_bucket{le="…"}`
//!   series from [`Histogram::cumulative_buckets`] (log2 bounds), the
//!   mandatory `{le="+Inf"}` terminator, `_sum` and `_count`.

use super::registry::MetricsSnapshot;
use super::Histogram;
use crate::json::JsonWriter;
use std::fmt::Write as _;

/// Schema tag embedded in [`metrics_json`] documents.
pub const METRICS_JSON_SCHEMA: &str = "vermem-metrics/v1";

/// Rewrite a registry metric name into a legal Prometheus metric name:
/// `vermem_` prefix, every byte outside `[a-zA-Z0-9_:]` replaced by `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("vermem_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Append one histogram family in Prometheus text format. Public so the
/// introspection server can expose windowed time-series histograms
/// ([`super::timeseries::TimeSeries::windowed`]) alongside the registry.
pub fn prometheus_histogram(out: &mut String, family: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {family} histogram");
    for (le, cumulative) in h.cumulative_buckets() {
        let _ = writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{family}_sum {}", h.sum());
    let _ = writeln!(out, "{family}_count {}", h.count());
}

/// Render the whole registry snapshot as a Prometheus text-format
/// document (version 0.0.4): deterministic order, one `# TYPE` comment
/// per family, trailing newline.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family} {value}");
    }
    for (name, gauge) in &snap.gauges {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {}", gauge.last);
        let _ = writeln!(out, "# TYPE {family}_max gauge");
        let _ = writeln!(out, "{family}_max {}", gauge.max);
        let _ = writeln!(out, "# TYPE {family}_samples counter");
        let _ = writeln!(out, "{family}_samples {}", gauge.samples);
    }
    for (name, hist) in &snap.histograms {
        prometheus_histogram(&mut out, &sanitize_metric_name(name), hist);
    }
    out
}

/// Render the registry snapshot as one JSON document: schema tag plus
/// `counters` / `gauges` / `histograms` objects (histograms carry summary
/// statistics and their cumulative log2 buckets). Deterministic order.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(METRICS_JSON_SCHEMA);
    w.key("counters").begin_object();
    for (name, value) in &snap.counters {
        w.key(name).u64(*value);
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (name, gauge) in &snap.gauges {
        w.key(name).begin_object();
        w.key("last").u64(gauge.last);
        w.key("max").u64(gauge.max);
        w.key("samples").u64(gauge.samples);
        w.end_object();
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (name, hist) in &snap.histograms {
        w.key(name).begin_object();
        w.key("count").u64(hist.count());
        w.key("sum").u64(hist.sum());
        w.key("min").u64(hist.min());
        w.key("max").u64(hist.max());
        w.key("p50").u64(hist.p50());
        w.key("p90").u64(hist.p90());
        w.key("p99").u64(hist.p99());
        w.key("buckets").begin_array();
        for (le, cumulative) in hist.cumulative_buckets() {
            w.begin_object();
            w.key("le").u64(le);
            w.key("cumulative").u64(cumulative);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        m.counter_add("search.states", 17);
        m.counter_add("stream.retired_ops", 3);
        m.gauge_set("pool.spsc.queue", 5);
        m.gauge_set("pool.spsc.queue", 2);
        for v in [1u64, 1, 5, 100, 1000] {
            m.histogram_record("tier.exact.us", v);
        }
        m
    }

    #[test]
    fn sanitized_names_are_legal_prometheus_names() {
        assert_eq!(
            sanitize_metric_name("stream.retired_ops"),
            "vermem_stream_retired_ops"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "vermem_a_b_c");
        let name = sanitize_metric_name("tier.exact.us");
        assert!(name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
    }

    #[test]
    fn prometheus_text_shape() {
        let doc = prometheus_text(&sample_snapshot());
        assert!(doc.contains("# TYPE vermem_search_states counter\n"));
        assert!(doc.contains("vermem_search_states 17\n"));
        assert!(doc.contains("# TYPE vermem_pool_spsc_queue gauge\n"));
        assert!(doc.contains("vermem_pool_spsc_queue 2\n"));
        assert!(doc.contains("vermem_pool_spsc_queue_max 5\n"));
        assert!(doc.contains("vermem_pool_spsc_queue_samples 2\n"));
        assert!(doc.contains("# TYPE vermem_tier_exact_us histogram\n"));
        assert!(doc.contains("vermem_tier_exact_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(doc.contains("vermem_tier_exact_us_sum 1107\n"));
        assert!(doc.contains("vermem_tier_exact_us_count 5\n"));
        // Every non-comment line is `name value` or `name{labels} value`.
        for line in doc.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("two fields");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_ordered() {
        let doc = prometheus_text(&sample_snapshot());
        let mut last_le = 0u64;
        let mut last_cum = 0u64;
        for line in doc.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let (head, value) = line.rsplit_once(' ').unwrap();
            let cum: u64 = value.parse().unwrap();
            if let Some(le) = head
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.strip_suffix("\"}"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                assert!(le >= last_le, "le bounds ascend: {line}");
                assert!(cum >= last_cum, "counts are cumulative: {line}");
                last_le = le;
                last_cum = cum;
            }
        }
        assert!(last_cum > 0, "saw at least one finite bucket");
    }

    #[test]
    fn metrics_json_parses_and_round_trips_values() {
        let doc = metrics_json(&sample_snapshot());
        let json = crate::json::parse_json(&doc).expect("valid JSON");
        assert_eq!(
            json.get("schema").and_then(|s| s.as_str()),
            Some(METRICS_JSON_SCHEMA)
        );
        let counters = json.get("counters").expect("counters");
        assert_eq!(
            counters.get("search.states").and_then(|v| v.as_u64()),
            Some(17)
        );
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("tier.exact.us"))
            .expect("histogram");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(hist.get("sum").and_then(|v| v.as_u64()), Some(1107));
        assert!(hist.get("buckets").and_then(|b| b.as_arr()).is_some());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
        assert_eq!(metrics_json(&a), metrics_json(&b));
    }

    #[test]
    fn empty_snapshot_renders_empty_families() {
        let empty = MetricsSnapshot::default();
        assert_eq!(prometheus_text(&empty), "");
        let json = crate::json::parse_json(&metrics_json(&empty)).unwrap();
        assert!(json.get("counters").is_some());
    }
}
