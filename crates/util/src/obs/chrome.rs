//! Chrome trace-event JSON rendering.
//!
//! Produces a JSON document loadable by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (open → drag the file in):
//!
//! ```json
//! {"displayTimeUnit":"ms","traceEvents":[
//!   {"name":"verify.addr","cat":"vermem","ph":"X","ts":12,"dur":340,
//!    "pid":1,"tid":2,"args":{"addr":7,"states":1912}},
//!   {"name":"pool.queue","cat":"vermem","ph":"C","ts":400,
//!    "pid":1,"tid":0,"args":{"pool.queue":3}}
//! ]}
//! ```
//!
//! Events are sorted by `(ts, tid, name)` before emission so the
//! output is deterministic given the same recorded set and the `ts`
//! fields are monotonically non-decreasing — a property
//! `scripts/verify.sh` shape-checks.

use crate::json::JsonWriter;
use crate::obs::span::TraceEvent;

/// Render recorded events as a Chrome trace-event JSON document.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted
        .sort_by(|a, b| (a.ts_us, a.tid, a.name.as_str()).cmp(&(b.ts_us, b.tid, b.name.as_str())));

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("traceEvents");
    w.begin_array();
    for e in sorted {
        w.begin_object();
        w.key("name");
        w.string(&e.name);
        w.key("cat");
        w.string("vermem");
        w.key("ph");
        w.string(&e.ph.to_string());
        w.key("ts");
        w.u64(e.ts_us);
        if e.ph == 'X' {
            w.key("dur");
            w.u64(e.dur_us);
        }
        w.key("pid");
        w.u64(1);
        w.key("tid");
        w.u64(e.tid as u64);
        w.key("args");
        w.begin_object();
        for (k, v) in &e.args {
            w.key(k);
            w.u64(*v);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};

    fn ev(name: &str, ph: char, ts: u64, dur: u64, tid: u32) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            ph,
            ts_us: ts,
            dur_us: dur,
            tid,
            args: vec![("k".to_string(), ts + 1)],
        }
    }

    #[test]
    fn renders_sorted_parseable_trace() {
        let events = vec![
            ev("b", 'X', 50, 10, 1),
            ev("a", 'C', 10, 0, 0),
            ev("c", 'X', 10, 5, 2),
        ];
        let out = render_chrome_trace(&events);
        let doc = parse_json(&out).expect("valid json");
        let Json::Obj(top) = &doc else {
            panic!("object")
        };
        assert_eq!(top[0].0, "displayTimeUnit");
        let Json::Arr(items) = &top[1].1 else {
            panic!("traceEvents array")
        };
        assert_eq!(items.len(), 3);
        // Sorted by (ts, tid, name): a@10/tid0, c@10/tid2, b@50.
        let names: Vec<&str> = items
            .iter()
            .map(|it| match it {
                Json::Obj(fs) => match &fs[0].1 {
                    Json::Str(s) => s.as_str(),
                    _ => panic!("name"),
                },
                _ => panic!("event object"),
            })
            .collect();
        assert_eq!(names, ["a", "c", "b"]);
        // ts fields monotonically non-decreasing; dur only on 'X'.
        let mut last_ts = 0.0;
        for it in items {
            let Json::Obj(fs) = it else { panic!("obj") };
            let ts = fs
                .iter()
                .find(|(k, _)| k == "ts")
                .map(|(_, v)| match v {
                    Json::Num(n) => *n,
                    _ => panic!("ts number"),
                })
                .unwrap();
            assert!(ts >= last_ts);
            last_ts = ts;
            let ph = fs
                .iter()
                .find(|(k, _)| k == "ph")
                .map(|(_, v)| match v {
                    Json::Str(s) => s.clone(),
                    _ => panic!("ph string"),
                })
                .unwrap();
            let has_dur = fs.iter().any(|(k, _)| k == "dur");
            assert_eq!(has_dur, ph == "X");
        }
    }

    #[test]
    fn empty_event_list_is_still_valid() {
        let out = render_chrome_trace(&[]);
        let doc = parse_json(&out).expect("valid json");
        let Json::Obj(top) = &doc else {
            panic!("object")
        };
        let Json::Arr(items) = &top[1].1 else {
            panic!("traceEvents array")
        };
        assert!(items.is_empty());
    }
}
