//! # `vermem::obs` — zero-dependency tracing and metrics
//!
//! The paper's whole point is that VMC cost *explodes* on adversarial
//! instances (NP-completeness, the Figure 5.3 wall); this module is the
//! measurement substrate that makes a blow-up, a memo-miss storm, or a
//! pool stall *visible* without ever changing an answer:
//!
//! * a process-global, thread-safe **metrics registry** ([`registry`]):
//!   monotonic counters, last/max gauges, and log2-bucketed histograms
//!   with p50/p90/p99;
//! * hierarchical **span timers** ([`span`]) recorded as duration events
//!   with per-thread track ids;
//! * a **Chrome trace-event emitter** ([`chrome`]) whose output loads
//!   directly into `chrome://tracing` / [Perfetto](https://ui.perfetto.dev);
//! * a unified serializable **[`report::RunReport`]** with deterministic
//!   field order, rendered by one shared pretty-printer or the in-tree
//!   JSON writer ([`crate::json`]);
//! * lock-free **rolling time-series** ([`timeseries`]) — windowed
//!   histograms over rotation epochs for live ops/s and sliding
//!   percentiles — and deterministic **exposition encoders** ([`expo`])
//!   rendering the registry as Prometheus text or JSON for the
//!   `vermem serve --obs-addr` introspection endpoint.
//!
//! ## The zero-overhead-when-off contract
//!
//! Observability is **off by default** and gated by a single process-wide
//! [`AtomicBool`]. The [`crate::counter!`], [`crate::gauge!`],
//! [`crate::histogram!`] and [`crate::span!`] macros compile to a
//! relaxed load plus a never-taken branch
//! when disabled — no clock read, no allocation, no lock. Two rules keep
//! that provable:
//!
//! 1. **All clock reads go through [`now_us`]** — the only `Instant::now`
//!    call in the `obs` module tree (`scripts/verify.sh` greps for this),
//!    and every caller sits behind an [`enabled`] check.
//! 2. **Hot loops never touch the registry.** Instrumented subsystems
//!    (the backtracking search, the worker pool, the simulator) keep plain
//!    local counters and *flush aggregates once per solve/run*, so the
//!    enabled cost is per-operation-batch, not per-operation.
//!
//! `bench/benches/obs_overhead.rs` and EXPERIMENTS.md §E-OBS record the
//! measured disabled overhead on the E-5.2 blow-up instance (≤ 2%).
//!
//! ## The determinism contract
//!
//! Enabling observability must not change verdicts, search statistics,
//! or any frozen PRNG stream: recording is strictly write-only
//! side channel state (`crates/sim/tests/obs_determinism.rs` proves it
//! differentially at jobs ∈ {1, 2, 8}). Note the converse does *not*
//! hold for the registry itself: with >1 worker, speculative per-address
//! work that the deterministic reducer discards is still *flushed*, so
//! registry totals (unlike `SearchStats`) may vary with thread count.
//!
//! ## Example
//!
//! ```
//! use vermem_util::{counter, obs, span};
//!
//! obs::reset();
//! obs::set_enabled(true);
//! {
//!     let mut s = span!("solve");
//!     s.arg("addr", 3);
//!     counter!("search.states", 17);
//! } // span records on drop
//! obs::set_enabled(false);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters["search.states"], 17);
//! let events = obs::take_events();
//! assert_eq!(events.len(), 1);
//! assert!(obs::chrome::render_chrome_trace(&events).contains("\"ph\":\"X\""));
//! ```

pub mod chrome;
pub mod expo;
pub mod registry;
pub mod report;
pub mod span;
pub mod timeseries;

pub use registry::{Gauge, Histogram, MetricsSnapshot};
pub use span::{Span, TraceEvent};

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The process-wide runtime toggle. Const-initialized so [`enabled`] is a
/// single relaxed atomic load with no lazy-init branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The time origin for [`now_us`]: fixed at first use so timestamps are
/// comparable across the whole process lifetime.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// All recorded state (metrics + trace events) behind one mutex. The lock
/// is touched only when observability is enabled, and only at flush
/// granularity (once per solve / span / chunk, never per search state).
static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();

#[derive(Default)]
struct Global {
    metrics: MetricsSnapshot,
    events: Vec<TraceEvent>,
}

fn global() -> &'static Mutex<Global> {
    GLOBAL.get_or_init(Mutex::default)
}

fn with_global<R>(f: impl FnOnce(&mut Global) -> R) -> R {
    f(&mut global().lock().expect("obs state poisoned"))
}

/// True when observability is recording. This is the no-op branch the
/// macros compile to: a relaxed load, nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Enabling pins the [`now_us`] epoch so the
/// first span does not pay a lazy-init branch mid-measurement.
pub fn set_enabled(on: bool) {
    if on {
        let _ = now_us(); // pin the epoch
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Microseconds since the process obs epoch.
///
/// This is the **only** clock read in the `obs` module tree (one
/// `Instant::now` occurrence, enforced by `scripts/verify.sh`), and every
/// call site sits behind an [`enabled`] check — the disabled path never
/// touches a clock.
#[inline]
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: std::cell::OnceCell<u32> = const { std::cell::OnceCell::new() };
}

/// A small dense id for the calling thread (1, 2, 3, … in first-use
/// order), used as the Chrome trace `tid` so each pool worker gets its own
/// track.
pub fn thread_id() -> u32 {
    TID.with(|c| *c.get_or_init(|| NEXT_TID.fetch_add(1, Ordering::Relaxed)))
}

/// Add `delta` to the monotonic counter `name`. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_global(|g| g.metrics.counter_add(name, delta));
}

/// Set gauge `name` to `value` (tracking last/max/samples) and record a
/// Chrome counter event so the value charts over time. No-op when
/// disabled.
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    let tid = thread_id();
    with_global(|g| {
        g.metrics.gauge_set(name, value);
        g.events.push(TraceEvent {
            name: name.to_string(),
            ph: 'C',
            ts_us,
            dur_us: 0,
            tid,
            args: vec![("value".to_string(), value)],
        });
    });
}

/// Record one `value` into the log2-bucketed histogram `name`. No-op when
/// disabled.
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_global(|g| g.metrics.histogram_record(name, value));
}

/// Merge a locally accumulated [`Histogram`] into the registry — the
/// batch-flush primitive hot loops use instead of per-event
/// [`histogram_record`] calls. No-op when disabled.
pub fn merge_histogram(name: &str, h: &Histogram) {
    if !enabled() || h.count() == 0 {
        return;
    }
    with_global(|g| g.metrics.merge_histogram(name, h));
}

/// Append a raw trace event. No-op when disabled (so a [`Span`] that
/// outlives a disable records nothing).
pub fn record_event(event: TraceEvent) {
    if !enabled() {
        return;
    }
    with_global(|g| g.events.push(event));
}

/// Start a span named `name`. Returns a no-op guard when disabled; when
/// enabled, the guard records an `'X'` duration event on drop. Prefer the
/// [`crate::span!`] macro.
pub fn span_start(name: &str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span::started(name, now_us())
}

/// A point-in-time copy of the metrics registry.
pub fn snapshot() -> MetricsSnapshot {
    with_global(|g| g.metrics.clone())
}

/// Drain the recorded trace events (oldest first, in recording order —
/// sort by `ts_us` for strict time order; [`chrome::render_chrome_trace`]
/// does so itself).
pub fn take_events() -> Vec<TraceEvent> {
    with_global(|g| std::mem::take(&mut g.events))
}

/// Clear all recorded metrics and events (the toggle and epoch are
/// untouched). Call before a measured run to scope its recordings.
pub fn reset() {
    with_global(|g| {
        g.metrics = MetricsSnapshot::default();
        g.events.clear();
    });
}

/// Add to a monotonic counter iff observability is enabled; compiles to a
/// relaxed load + never-taken branch when off (arguments are not even
/// evaluated).
///
/// ```
/// vermem_util::counter!("search.states", 1);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::obs::enabled() {
            $crate::obs::counter_add($name, $delta);
        }
    };
}

/// Set a gauge iff observability is enabled (see [`crate::counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::obs::enabled() {
            $crate::obs::gauge_set($name, $value);
        }
    };
}

/// Record a histogram value iff observability is enabled (see
/// [`crate::counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::obs::enabled() {
            $crate::obs::histogram_record($name, $value);
        }
    };
}

/// Open a span: `let _s = span!("name");` records a duration event when
/// the guard drops. Disabled → a no-op guard, no clock read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::obs::span_start($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The obs state is process-global; tests that toggle it serialize
    /// here so `cargo test`'s threaded runner cannot interleave them.
    pub(super) fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(Mutex::default).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_macros_record_nothing_and_evaluate_nothing() {
        let _g = lock();
        reset();
        set_enabled(false);
        let mut evaluated = false;
        counter!("x", {
            evaluated = true;
            1
        });
        histogram!("h", {
            evaluated = true;
            2
        });
        let _s = span!("s");
        assert!(!evaluated, "disabled macros must not evaluate arguments");
        // Concurrent tests in this binary may have recorded while enabled
        // elsewhere; assert only about this test's own names.
        assert!(!snapshot().counters.contains_key("x"));
        assert!(take_events().iter().all(|e| e.name != "s"));
    }

    #[test]
    fn enabled_counters_gauges_histograms_accumulate() {
        let _g = lock();
        reset();
        set_enabled(true);
        counter!("c", 2);
        counter!("c", 3);
        gauge!("g", 7);
        gauge!("g", 4);
        histogram!("h", 1);
        histogram!("h", 1000);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"].last, 4);
        assert_eq!(snap.gauges["g"].max, 7);
        assert_eq!(snap.gauges["g"].samples, 2);
        assert_eq!(snap.histograms["h"].count(), 2);
        // The two gauge samples became Chrome counter events.
        let events = take_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.ph == 'C' && e.name == "g")
                .count(),
            2
        );
        reset();
        assert!(!snapshot().counters.contains_key("c"));
    }

    #[test]
    fn spans_record_duration_events_with_args() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let mut s = span!("work");
            s.arg("addr", 9);
            assert!(s.is_recording());
        }
        set_enabled(false);
        let events = take_events();
        let work: Vec<_> = events.iter().filter(|e| e.name == "work").collect();
        assert_eq!(work.len(), 1);
        let e = work[0];
        assert_eq!(e.ph, 'X');
        assert!(e.tid >= 1);
        assert_eq!(e.args, vec![("addr".to_string(), 9)]);
    }

    #[test]
    fn span_that_outlives_disable_is_dropped_silently() {
        let _g = lock();
        reset();
        set_enabled(true);
        let s = span!("orphan");
        set_enabled(false);
        drop(s);
        set_enabled(true);
        let events = take_events();
        set_enabled(false);
        assert!(events.iter().all(|e| e.name != "orphan"));
    }

    #[test]
    fn thread_ids_are_small_dense_and_distinct() {
        let a = thread_id();
        assert_eq!(a, thread_id(), "stable within a thread");
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
