//! Trace events and hierarchical span timers.
//!
//! A [`Span`] measures the wall-clock duration of a scope. When
//! observability is disabled ([`crate::obs::enabled`] is false) a span
//! is a `None`-carrying ZST-sized wrapper: construction, `arg`, and
//! `Drop` all reduce to a branch on an `Option` — no clock reads, no
//! allocation, no locking. When enabled, dropping the span records one
//! Chrome-trace `ph:"X"` duration event into the global event buffer.
//!
//! Events use the Chrome trace-event vocabulary directly so the
//! renderer ([`crate::obs::chrome`]) is a plain serialization pass:
//! `ph` is `'X'` for complete/duration events and `'C'` for counter
//! samples (emitted by [`crate::obs::gauge_set`]).

use crate::obs::{now_us, record_event, thread_id};

/// One Chrome-trace event: a completed span (`ph = 'X'`) or a counter
/// sample (`ph = 'C'`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span or counter name).
    pub name: String,
    /// Chrome trace-event phase: `'X'` duration or `'C'` counter.
    pub ph: char,
    /// Start timestamp in microseconds since the obs epoch.
    pub ts_us: u64,
    /// Duration in microseconds (`'X'` events only; 0 for `'C'`).
    pub dur_us: u64,
    /// Dense per-thread id ([`crate::obs::thread_id`]).
    pub tid: u32,
    /// Per-event arguments shown in the trace viewer's detail pane.
    pub args: Vec<(String, u64)>,
}

/// The recording half of a live span: everything needed to emit the
/// `'X'` event at drop time.
#[derive(Debug)]
struct SpanInner {
    name: String,
    start_us: u64,
    tid: u32,
    args: Vec<(String, u64)>,
}

/// A scope timer that records a Chrome-trace duration event on drop.
///
/// Create one through the [`span!`](crate::span) macro (which checks
/// the runtime toggle before evaluating the name) or through
/// [`crate::obs::span_start`]. A disabled span is inert.
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

impl Span {
    /// A span that records nothing — the disabled fast path.
    #[inline]
    pub fn disabled() -> Span {
        Span(None)
    }

    /// A live span started at `start_us` (obtained from
    /// [`crate::obs::now_us`] by the caller).
    pub fn started(name: &str, start_us: u64) -> Span {
        Span(Some(SpanInner {
            name: name.to_string(),
            start_us,
            tid: thread_id(),
            args: Vec::new(),
        }))
    }

    /// Attach a `name = value` argument to the event (no-op when the
    /// span is disabled, so callers may compute `value` lazily behind
    /// [`Span::is_recording`] if it is expensive).
    #[inline]
    pub fn arg(&mut self, name: &str, value: u64) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((name.to_string(), value));
        }
    }

    /// True when this span will record an event on drop.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let end = now_us();
            record_event(TraceEvent {
                name: inner.name,
                ph: 'X',
                ts_us: inner.start_us,
                dur_us: end.saturating_sub(inner.start_us),
                tid: inner.tid,
                args: inner.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs;

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = obs::tests::lock();
        obs::reset();
        obs::set_enabled(false);
        {
            let mut s = Span::disabled();
            assert!(!s.is_recording());
            s.arg("x", 1);
        }
        let events = obs::take_events();
        assert!(events.iter().all(|e| e.name != "never-named"));
    }

    #[test]
    fn live_span_records_duration_event_with_args() {
        let _guard = obs::tests::lock();
        obs::reset();
        obs::set_enabled(true);
        {
            let mut s = obs::span_start("span-test-live");
            assert!(s.is_recording());
            s.arg("answer", 42);
        }
        obs::set_enabled(false);
        let events = obs::take_events();
        let ev: Vec<_> = events
            .iter()
            .filter(|e| e.name == "span-test-live")
            .collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].ph, 'X');
        assert_eq!(ev[0].args, vec![("answer".to_string(), 42)]);
    }
}
