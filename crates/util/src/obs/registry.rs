//! The metrics registry: counters, gauges, and log2-bucketed histograms.
//!
//! Keys are strings stored in `BTreeMap`s so every rendering (text,
//! JSON, [`crate::obs::report::RunReport`]) enumerates metrics in a
//! **deterministic order** — no HashMap iteration-order noise in diffs
//! of recorded output.
//!
//! The registry type doubles as its own snapshot ([`MetricsSnapshot`]):
//! the global instance lives behind the `obs` mutex, and
//! [`crate::obs::snapshot`] hands out clones.

use std::collections::BTreeMap;

/// A last-value gauge with max and sample tracking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently set value.
    pub last: u64,
    /// Maximum value ever set.
    pub max: u64,
    /// Number of times the gauge was set.
    pub samples: u64,
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; bucket 64 tops out at `u64::MAX`.
/// Shared with the lock-free [`crate::obs::timeseries::AtomicHistogram`],
/// which mirrors this layout in atomic cells.
pub(super) const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples with exact count/sum/min/max
/// and bucket-resolution percentiles.
///
/// Recording is one compare, one `leading_zeros`, and one array
/// increment — cheap enough for per-state accumulation in a *local*
/// histogram that is batch-merged into the registry at flush time
/// ([`crate::obs::merge_histogram`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

pub(super) fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value reported for
/// percentiles that land in it).
fn bucket_top(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Rebuild a histogram from raw cells — the bridge the lock-free
    /// [`crate::obs::timeseries::AtomicHistogram`] snapshot uses. `min`
    /// uses the empty sentinel `u64::MAX`, matching [`Default`].
    pub(super) fn from_raw(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    ) -> Histogram {
        Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, at log2-bucket resolution: the
    /// inclusive upper bound of the bucket containing the q-th sample,
    /// clamped to the exact recorded `max`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, ceil so p100 = last sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_top(i).min(self.max);
            }
        }
        self.max
    }

    /// Median at bucket resolution.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile at bucket resolution.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile at bucket resolution.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The non-empty buckets as `(inclusive upper bound, cumulative
    /// count)` pairs in ascending bound order — exactly the shape a
    /// Prometheus histogram's `le` series needs (the final pair's count
    /// equals [`Histogram::count`]). Empty histogram → empty vec.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                seen += c;
                out.push((bucket_top(i), seen));
            }
        }
        out
    }
}

/// The registry contents: all metric families keyed by name in sorted
/// (deterministic) order. Cloned out of the global state by
/// [`crate::obs::snapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, Gauge>,
    /// Log2-bucketed histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Add `delta` to counter `name`.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_default();
        g.last = value;
        g.max = g.max.max(value);
        g.samples += 1;
    }

    /// Record `value` into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merge a locally accumulated histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_top(0), 0);
        assert_eq!(bucket_top(1), 1);
        assert_eq!(bucket_top(10), 1023);
        assert_eq!(bucket_top(64), u64::MAX);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.p50()), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        for v in [0u64, 1, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn percentiles_at_bucket_resolution() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, top 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, top 1023
        }
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        // The 99th sample is in the 1000s bucket; top clamped to max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.percentile(0.0), 15);

        let mut single = Histogram::new();
        single.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.percentile(q), 7);
        }
    }

    #[test]
    fn histogram_merge_matches_interleaved_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..200u64 {
            if v % 3 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            both.record(v * 7);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // Merging an empty histogram is a no-op (min stays intact).
        merged.merge(&Histogram::new());
        assert_eq!(merged, both);
    }

    #[test]
    fn snapshot_families_are_independent_and_sorted() {
        let mut m = MetricsSnapshot::default();
        assert!(m.is_empty());
        m.counter_add("z.count", 1);
        m.counter_add("a.count", 2);
        m.counter_add("z.count", 1);
        m.gauge_set("g", 9);
        m.histogram_record("h", 3);
        assert!(!m.is_empty());
        assert_eq!(
            m.counters.keys().collect::<Vec<_>>(),
            ["a.count", "z.count"]
        );
        assert_eq!(m.counters["z.count"], 2);
        assert_eq!(m.gauges["g"].last, 9);
        assert_eq!(m.histograms["h"].count(), 1);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut m = MetricsSnapshot::default();
        m.counter_add("c", u64::MAX - 1);
        m.counter_add("c", 5);
        assert_eq!(m.counters["c"], u64::MAX);
    }
}
