//! The unified run report: one serializable shape for every
//! subsystem's statistics.
//!
//! Before this module the workspace had five scattered stats structs
//! (`SearchStats`, `SolverStats`, `MachineStats`, `TraceStats`, pool
//! timings) each with its own ad-hoc `format!` block. A [`RunReport`]
//! is an ordered list of [`RunReportSection`]s — `name` plus ordered
//! `key = value` fields — rendered by exactly **one** pretty-printer
//! ([`RunReport::to_text`] / [`RunReportSection::to_inline`]) or by the
//! in-tree JSON writer ([`RunReport::to_json`], schema
//! [`RUN_REPORT_SCHEMA`]). Field order is insertion order and sections
//! keep their push order, so renderings are byte-deterministic.

use crate::json::JsonWriter;
use crate::obs::registry::MetricsSnapshot;
use crate::obs::span::TraceEvent;

/// Schema tag embedded in every JSON rendering of a [`RunReport`].
pub const RUN_REPORT_SCHEMA: &str = "vermem-run-report/v1";

/// One field value: integers for counts, floats for rates/means,
/// strings for verdicts and labels.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportValue {
    /// An exact count.
    U64(u64),
    /// A derived rate or mean.
    F64(f64),
    /// A label, verdict, or name.
    Str(String),
}

impl From<u64> for ReportValue {
    fn from(v: u64) -> Self {
        ReportValue::U64(v)
    }
}

impl From<usize> for ReportValue {
    fn from(v: usize) -> Self {
        ReportValue::U64(v as u64)
    }
}

impl From<u32> for ReportValue {
    fn from(v: u32) -> Self {
        ReportValue::U64(v as u64)
    }
}

impl From<f64> for ReportValue {
    fn from(v: f64) -> Self {
        ReportValue::F64(v)
    }
}

impl From<&str> for ReportValue {
    fn from(v: &str) -> Self {
        ReportValue::Str(v.to_string())
    }
}

impl From<String> for ReportValue {
    fn from(v: String) -> Self {
        ReportValue::Str(v)
    }
}

impl std::fmt::Display for ReportValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportValue::U64(v) => write!(f, "{v}"),
            // Rust's f64 Display is shortest-round-trip: deterministic
            // and lossless, no trailing-zero noise.
            ReportValue::F64(v) => write!(f, "{v}"),
            ReportValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One named group of ordered `key = value` fields — e.g. `search`,
/// `sat`, `sim`, `pool`, `trace`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReportSection {
    /// Section name (the prefix in text rendering).
    pub name: String,
    /// Ordered fields; order is exactly the push order.
    pub fields: Vec<(String, ReportValue)>,
}

impl RunReportSection {
    /// An empty section named `name`.
    pub fn new(name: &str) -> Self {
        RunReportSection {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Append a field (keeps insertion order).
    pub fn field(&mut self, key: &str, value: impl Into<ReportValue>) -> &mut Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Builder-style [`field`](Self::field).
    pub fn with(mut self, key: &str, value: impl Into<ReportValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The one shared pretty-printer: `name: k=v k=v …`.
    ///
    /// Every subsystem's `to_report()` output goes through this (or
    /// [`RunReport::to_text`], which delegates here), replacing the
    /// four ad-hoc format blocks the CLI used to carry.
    pub fn to_inline(&self) -> String {
        let mut out = String::with_capacity(16 + 16 * self.fields.len());
        out.push_str(&self.name);
        out.push(':');
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("name");
        w.string(&self.name);
        w.key("fields");
        w.begin_object();
        for (k, v) in &self.fields {
            w.key(k);
            match v {
                ReportValue::U64(n) => w.u64(*n),
                ReportValue::F64(n) => w.f64(*n),
                ReportValue::Str(s) => w.string(s),
            };
        }
        w.end_object();
        w.end_object();
    }
}

/// An ordered collection of [`RunReportSection`]s with one text and one
/// JSON rendering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Sections in push order.
    pub sections: Vec<RunReportSection>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport::default()
    }

    /// Append a section.
    pub fn push_section(&mut self, section: RunReportSection) {
        self.sections.push(section);
    }

    /// Find a section by name (first match).
    pub fn section(&self, name: &str) -> Option<&RunReportSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Append the metrics registry contents as three sections
    /// (`counters`, `gauges`, and one `hist.<name>` section per
    /// histogram with count/sum/mean/p50/p90/p99/max). `BTreeMap`
    /// iteration keeps this deterministic. Empty families are skipped.
    pub fn extend_from_metrics(&mut self, m: &MetricsSnapshot) {
        if !m.counters.is_empty() {
            let mut s = RunReportSection::new("counters");
            for (k, v) in &m.counters {
                s.field(k, *v);
            }
            self.sections.push(s);
        }
        if !m.gauges.is_empty() {
            let mut s = RunReportSection::new("gauges");
            for (k, g) in &m.gauges {
                s.field(&format!("{k}.last"), g.last);
                s.field(&format!("{k}.max"), g.max);
            }
            self.sections.push(s);
        }
        for (k, h) in &m.histograms {
            if h.count() == 0 {
                continue;
            }
            self.sections.push(
                RunReportSection::new(&format!("hist.{k}"))
                    .with("count", h.count())
                    .with("sum", h.sum())
                    .with("mean", h.mean())
                    .with("p50", h.p50())
                    .with("p90", h.p90())
                    .with("p99", h.p99())
                    .with("max", h.max()),
            );
        }
    }

    /// Text rendering: one [`RunReportSection::to_inline`] line per
    /// section.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            out.push_str(&s.to_inline());
            out.push('\n');
        }
        out
    }

    /// JSON rendering (schema [`RUN_REPORT_SCHEMA`], deterministic
    /// field order via [`JsonWriter`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string(RUN_REPORT_SCHEMA);
        w.key("sections");
        w.begin_array();
        for s in &self.sections {
            s.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// The `k` slowest `'X'` events named `name`, longest first
/// (deterministic tie-break on `(ts, tid)`). This is how the CLI's
/// top-K slowest-addresses table falls out of the per-address
/// `verify.addr` spans.
pub fn top_k_slowest(events: &[TraceEvent], name: &str, k: usize) -> Vec<TraceEvent> {
    let mut matching: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.ph == 'X' && e.name == name)
        .collect();
    matching.sort_by(|a, b| {
        b.dur_us
            .cmp(&a.dur_us)
            .then(a.ts_us.cmp(&b.ts_us))
            .then(a.tid.cmp(&b.tid))
    });
    matching.into_iter().take(k).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};
    use crate::obs::registry::MetricsSnapshot;

    #[test]
    fn inline_rendering_preserves_field_order() {
        let s = RunReportSection::new("search")
            .with("states", 12u64)
            .with("rate", 1.5f64)
            .with("verdict", "coherent");
        assert_eq!(s.to_inline(), "search: states=12 rate=1.5 verdict=coherent");
    }

    #[test]
    fn report_text_is_one_line_per_section() {
        let mut r = RunReport::new();
        r.push_section(RunReportSection::new("a").with("x", 1u64));
        r.push_section(RunReportSection::new("b").with("y", 2u64));
        assert_eq!(r.to_text(), "a: x=1\nb: y=2\n");
        assert_eq!(r.section("b").unwrap().fields[0].0, "y");
        assert!(r.section("zzz").is_none());
    }

    #[test]
    fn json_rendering_has_schema_and_parses() {
        let mut r = RunReport::new();
        r.push_section(
            RunReportSection::new("search")
                .with("states", 3u64)
                .with("mean", 0.5f64)
                .with("verdict", "coherent"),
        );
        let json = r.to_json();
        let doc = parse_json(&json).expect("valid json");
        let Json::Obj(top) = &doc else {
            panic!("object")
        };
        assert_eq!(top[0].0, "schema");
        assert_eq!(top[0].1, Json::Str(RUN_REPORT_SCHEMA.to_string()));
        let Json::Arr(sections) = &top[1].1 else {
            panic!("sections array")
        };
        assert_eq!(sections.len(), 1);
        let Json::Obj(sec) = &sections[0] else {
            panic!("obj")
        };
        assert_eq!(sec[0].1, Json::Str("search".to_string()));
        let Json::Obj(fields) = &sec[1].1 else {
            panic!("fields obj")
        };
        assert_eq!(
            fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["states", "mean", "verdict"]
        );
    }

    #[test]
    fn metrics_snapshot_extends_into_sections() {
        let mut m = MetricsSnapshot::default();
        m.counter_add("b.count", 2);
        m.counter_add("a.count", 1);
        m.gauge_set("q", 5);
        for v in [1u64, 2, 1000] {
            m.histogram_record("depth", v);
        }
        let mut r = RunReport::new();
        r.extend_from_metrics(&m);
        let names: Vec<&str> = r.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["counters", "gauges", "hist.depth"]);
        // Counters are sorted (BTreeMap order).
        assert_eq!(r.sections[0].fields[0].0, "a.count");
        let hist = r.section("hist.depth").unwrap();
        assert_eq!(hist.fields[0], ("count".to_string(), ReportValue::U64(3)));
        // Empty snapshot adds nothing.
        let mut empty = RunReport::new();
        empty.extend_from_metrics(&MetricsSnapshot::default());
        assert!(empty.sections.is_empty());
    }

    #[test]
    fn top_k_slowest_sorts_and_truncates() {
        let ev = |ts: u64, dur: u64, name: &str| TraceEvent {
            name: name.to_string(),
            ph: 'X',
            ts_us: ts,
            dur_us: dur,
            tid: 1,
            args: vec![("addr".to_string(), ts)],
        };
        let mut events = vec![
            ev(10, 5, "verify.addr"),
            ev(20, 50, "verify.addr"),
            ev(30, 50, "verify.addr"),
            ev(40, 7, "other"),
        ];
        events.push(TraceEvent {
            name: "verify.addr".to_string(),
            ph: 'C',
            ts_us: 0,
            dur_us: 999,
            tid: 1,
            args: vec![],
        });
        let top = top_k_slowest(&events, "verify.addr", 2);
        assert_eq!(top.len(), 2);
        // Equal durations tie-break by ts ascending.
        assert_eq!((top[0].ts_us, top[0].dur_us), (20, 50));
        assert_eq!((top[1].ts_us, top[1].dur_us), (30, 50));
    }
}
