//! Minimal JSON writer and parser — the serialization substrate for the
//! observability layer ([`crate::obs`]) and the benchmark receipts.
//!
//! The workspace is dependency-free (no `serde`), so machine-readable
//! output is produced through [`JsonWriter`], a small streaming emitter
//! that tracks container nesting and comma placement, and consumed (in
//! tests and tools) through [`parse_json`], a strict recursive-descent
//! parser into the order-preserving [`Json`] value tree.
//!
//! ```
//! use vermem_util::json::{parse_json, Json, JsonWriter};
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("vermem");
//! w.key("counts");
//! w.begin_array();
//! w.u64(1);
//! w.u64(2);
//! w.end_array();
//! w.end_object();
//! let text = w.finish();
//! assert_eq!(text, r#"{"name":"vermem","counts":[1,2]}"#);
//!
//! let v = parse_json(&text).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("vermem"));
//! ```

/// A parsed JSON value. Object members keep **source order** (a `Vec`, not
/// a map), so field-order contracts — e.g. the deterministic section order
/// of a [`crate::obs::report::RunReport`] — are testable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips exactly through `u64` (timestamps, counters).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Nesting is capped at 128 levels.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= 128 {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            // hex4 advanced past the digits; compensate for
                            // the `pos += 1` shared by all escape arms below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes and escapes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Clone, Copy, Debug)]
enum Frame {
    Object { first: bool },
    Array { first: bool },
}

/// A streaming JSON emitter with automatic comma placement.
///
/// Call sequence is enforced only by debug assertions (the writer is used
/// with internally generated shapes); `finish` asserts that every opened
/// container was closed.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(Frame::Array { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Write an object member key (inside an object only).
    pub fn key(&mut self, k: &str) -> &mut Self {
        match self.stack.last_mut() {
            Some(Frame::Object { first }) => {
                if *first {
                    *first = false;
                } else {
                    self.out.push(',');
                }
            }
            _ => debug_assert!(false, "key() outside an object"),
        }
        escape_into(&mut self.out, k);
        self.out.push(':');
        self
    }

    /// Open an object (as a value).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.stack.push(Frame::Object { first: true });
        self
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some(Frame::Object { .. })));
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open an array (as a value).
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.stack.push(Frame::Array { first: true });
        self
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some(Frame::Array { .. })));
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        escape_into(&mut self.out, s);
        self
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write a float value (`NaN`/`±∞` become `null`; Rust's shortest
    /// round-trip `Display` is valid JSON for all finite values).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            let s = v.to_string();
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write `null`.
    pub fn null(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push_str("null");
        self
    }

    /// Insert a raw newline (cosmetic; valid between any two tokens at the
    /// places this codebase uses it — after commas and container openers).
    pub fn newline(&mut self) -> &mut Self {
        self.out.push('\n');
        self
    }

    /// Finish and return the document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced containers");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_parseable_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.string("x\"y\\z\n");
        w.f64(0.5);
        w.i64(-3);
        w.bool(true);
        w.null();
        w.begin_object();
        w.end_object();
        w.end_array();
        w.key("c");
        w.f64(f64::NAN);
        w.end_object();
        let text = w.finish();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        let b = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(b[0].as_str(), Some("x\"y\\z\n"));
        assert_eq!(b[1].as_f64(), Some(0.5));
        assert_eq!(b[2].as_f64(), Some(-3.0));
        assert_eq!(b[3], Json::Bool(true));
        assert_eq!(b[4], Json::Null);
        assert_eq!(b[5], Json::Obj(Vec::new()));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = parse_json(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parser_accepts_standard_forms() {
        for (text, want) in [
            ("0", Json::Num(0.0)),
            ("-0.5e2", Json::Num(-50.0)),
            ("1e3", Json::Num(1000.0)),
            ("true", Json::Bool(true)),
            ("null", Json::Null),
            ("\"\"", Json::Str(String::new())),
            ("[]", Json::Arr(Vec::new())),
            ("{}", Json::Obj(Vec::new())),
            (
                "  [ 1 , 2 ]  ",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
            ),
        ] {
            assert_eq!(parse_json(text).unwrap(), want, "{text}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse_json(r#""aA\n\té ü 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\té ü 😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "--1",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "tru",
            "[1]x",
            "\"unterminated",
            "\u{1}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn escape_round_trips_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\u{1}b\u{1f}c");
        assert_eq!(out, "\"a\\u0001b\\u001fc\"");
        assert_eq!(parse_json(&out).unwrap().as_str(), Some("a\u{1}b\u{1f}c"));
    }
}
