//! Fast non-cryptographic hashing for hot-path collections.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant but
//! costs tens of nanoseconds per small key — far too much for the exact
//! VMC search, which probes its visited-state set once per explored state.
//! [`FxHasher`] is the classic multiply-xor hasher (the rustc `FxHash`
//! recipe): one rotate, one xor and one multiply per 8-byte word.
//!
//! ## Stream-stability policy
//!
//! Like the PRNG in [`crate::rng`], the hash stream is **frozen**: the
//! known-answer tests in this module pin `hash(bytes)` for fixed inputs.
//! Nothing downstream may depend on iteration order of an
//! [`FxHashMap`]/[`FxHashSet`] (it is unspecified as for any `HashMap`),
//! but the per-key hash values themselves are part of the reproducibility
//! contract and must not change silently.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] wherever keys are trusted (internal
//! search state, counters over values); keep SipHash maps for anything
//! fed by untrusted external input.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplicative constant of the FxHash recipe (a 64-bit fractional
/// expansion of π, the same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher. Not cryptographic, not keyed:
/// use only for internal, trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Fold one 64-bit word into the state.
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Tag the tail with its length so "ab" and "ab\0" differ.
            buf[7] ^= rem.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// on trusted keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`]. Drop-in for `std::collections::HashSet`
/// on trusted keys.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one value to a `u64` with the frozen Fx stream.
#[inline]
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests: the Fx stream is frozen (see module docs).
    /// Regenerate only on a deliberate, documented break:
    /// `fx_hash_one(&x)` for each input below.
    #[test]
    fn kat_stream_is_frozen_for_words() {
        assert_eq!(fx_hash_one(&0u64), 0);
        assert_eq!(fx_hash_one(&1u64), 0x517cc1b727220a95);
        assert_eq!(fx_hash_one(&0xdead_beefu64), 0x67f3c0372953771b);
        assert_eq!(fx_hash_one(&u64::MAX), 0xae833e48d8ddf56b);
        assert_eq!(fx_hash_one(&(1u64, 2u64)), 0x6a4be67ff98fabc8);
    }

    #[test]
    fn kat_stream_is_frozen_for_bytes() {
        assert_eq!(fx_hash_one::<[u8]>(b""), 0);
        assert_eq!(fx_hash_one::<[u8]>(b"a"), 0xf95a628a53371e27);
        assert_eq!(fx_hash_one::<[u8]>(b"vermem"), 0x5551c2c1e20a6387);
        assert_eq!(fx_hash_one::<[u8]>(b"12345678"), 0x18032863425585a0);
        assert_eq!(fx_hash_one::<[u8]>(b"123456789"), 0x6efc1356c20cbd84);
    }

    #[test]
    fn tail_length_disambiguates() {
        // Same padded word, different lengths must differ.
        assert_ne!(fx_hash_one::<[u8]>(b"ab"), fx_hash_one::<[u8]>(b"ab\0"));
    }

    #[test]
    fn u32_slices_hash_like_sequences() {
        // Box<[u32]> and Vec<u32> with equal content agree (both go through
        // the slice Hash impl) — the memoizer relies on this.
        let v: Vec<u32> = vec![1, 2, 3];
        let b: Box<[u32]> = v.clone().into_boxed_slice();
        assert_eq!(fx_hash_one(&v), fx_hash_one(&b));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<(u64, u32), usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i as u32), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(37, 37)], 37);

        let mut s: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2]));
        assert!(!s.insert(vec![1, 2]));
    }

    #[test]
    fn distribution_smoke_no_catastrophic_collisions() {
        // 10k sequential keys must not collapse onto few hashes.
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fx_hash_one(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }
}
