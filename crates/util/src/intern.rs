//! Slice interning: map each distinct slice to a dense `u32` id.
//!
//! The memoized searches (the VMC backtracking engine and the
//! model-agnostic transition-system kernel) probe a visited-state set once
//! per explored state. When the state key does not fit in a couple of
//! machine words, the cheap alternative to hashing a freshly allocated
//! `Vec` per probe is to *intern* the key: box each distinct slice once,
//! hand out a dense id, and let re-probes hash only the id. The interner
//! is deliberately exact — keys are compared by full slice equality, never
//! by hash alone — because a colliding "already visited" answer would make
//! a search unsound.
//!
//! Allocation accounting is first-class ([`SliceInterner::allocations`]):
//! the bench receipts gate the kernel's fewer-allocations claim on it.

use crate::hash::FxHashMap;
use std::hash::Hash;

/// Interns boxed slices, assigning dense `u32` ids in first-seen order.
///
/// ```
/// use vermem_util::intern::SliceInterner;
/// let mut i = SliceInterner::new();
/// assert_eq!(i.intern(&[1u64, 2, 3]), (0, true)); // first sight
/// assert_eq!(i.intern(&[1u64, 2, 3]), (0, false)); // re-probe: no alloc
/// assert_eq!(i.intern(&[9u64]), (1, true));
/// assert_eq!(i.len(), 2);
/// assert_eq!(i.allocations(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SliceInterner<T> {
    ids: FxHashMap<Box<[T]>, u32>,
}

impl<T: Hash + Eq + Clone> SliceInterner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        SliceInterner {
            ids: FxHashMap::default(),
        }
    }

    /// Return the id of `key`, interning it on first sight. The second
    /// component is `true` iff the key was fresh (this call allocated).
    pub fn intern(&mut self, key: &[T]) -> (u32, bool) {
        debug_assert!(self.ids.len() < u32::MAX as usize, "interner id overflow");
        if let Some(&id) = self.ids.get(key) {
            return (id, false);
        }
        let id = self.ids.len() as u32;
        self.ids.insert(key.to_vec().into_boxed_slice(), id);
        (id, true)
    }

    /// The id of `key` if it was interned before, without interning it.
    pub fn get(&self, key: &[T]) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// Number of distinct interned slices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of heap allocations performed so far: exactly one boxed
    /// slice per distinct key (re-probes allocate nothing).
    pub fn allocations(&self) -> u64 {
        self.ids.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut i = SliceInterner::new();
        assert_eq!(i.intern(&[3u32, 1]), (0, true));
        assert_eq!(i.intern(&[2u32]), (1, true));
        assert_eq!(i.intern(&[]), (2, true));
        assert_eq!(i.intern(&[3u32, 1]), (0, false));
        assert_eq!(i.intern(&[2u32]), (1, false));
        assert_eq!(i.intern(&[]), (2, false));
        assert_eq!(i.len(), 3);
        assert_eq!(i.allocations(), 3);
    }

    #[test]
    fn equality_is_exact_not_hashed() {
        // Prefix/suffix confusions must not collide.
        let mut i = SliceInterner::new();
        let (a, _) = i.intern(&[1u64, 2]);
        let (b, _) = i.intern(&[1u64, 2, 0]);
        let (c, _) = i.intern(&[0u64, 1, 2]);
        assert!(a != b && b != c && a != c);
        assert_eq!(i.get(&[1u64, 2]), Some(a));
        assert_eq!(i.get(&[1u64]), None);
    }

    #[test]
    fn reprobe_never_allocates() {
        let mut i = SliceInterner::new();
        for round in 0..3u64 {
            for k in 0..10u64 {
                i.intern(&[k, k * k]);
            }
            assert_eq!(i.allocations(), 10, "round {round}");
        }
    }
}
