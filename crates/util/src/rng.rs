//! Deterministic, seedable pseudo-random number generation.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** exactly like `rand`'s
//! `SeedableRng::seed_from_u64` convention. Both algorithms are public
//! domain, pass BigCrush, and are trivially reproducible from their
//! published reference C — which is what makes the repo's "same seed ⇒
//! identical trace across releases" policy auditable.
//!
//! The API deliberately mirrors the subset of `rand` 0.8 the workspace
//! used, so porting a call site is a one-line import change:
//!
//! ```
//! use vermem_util::rng::{SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let mut deck: Vec<u32> = (0..52).collect();
//! deck.shuffle(&mut rng);
//! let card = deck.choose(&mut rng).copied();
//! assert!(coin || !coin);
//! assert!(card.is_some());
//! ```

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed into
/// the xoshiro state (and usable on its own for cheap stream derivation).
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); public-domain C by Sebastiano Vigna.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's standard generator. 256 bits of state,
/// period 2^256 − 1, excellent statistical quality, a handful of xors and
/// rotates per output.
///
/// Named `StdRng` because every downstream crate uses it as *the* RNG, and
/// so that call sites ported from `rand` keep reading naturally.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a single `u64` by expanding it through
    /// [`SplitMix64`] — the same convention `rand`'s `seed_from_u64` uses,
    /// and the only constructor the workspace permits (no OS entropy:
    /// every run must be reproducible from its recorded seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot emit four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of [`StdRng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection. `n` must be nonzero.
    #[inline]
    pub fn uniform_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    ///
    /// Uses the top 53 bits of one output, so `p = 0.0` is never true and
    /// `p = 1.0` is always true.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) * SCALE < p
    }
}

/// Integer ranges that [`StdRng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Work in u64 offset space; spans here always fit because
                // start < end bounds the span by the type's width (≤ 64 bits
                // and the full-width span is unrepresentable for `..`).
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.uniform_below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64() // full-width inclusive range
                } else {
                    rng.uniform_below(span as u64)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `rand`-style slice helpers: in-place shuffling and random element choice.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);

    /// A uniformly random element, or `None` if empty.
    fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;

    /// `min(k, len)` distinct elements, uniformly without replacement.
    /// Order is unspecified (selection order of a partial shuffle).
    fn choose_multiple(&self, rng: &mut StdRng, k: usize) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.uniform_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.uniform_below(self.len() as u64) as usize)
        }
    }

    fn choose_multiple(&self, rng: &mut StdRng, k: usize) -> std::vec::IntoIter<&T> {
        let k = k.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..k {
            let j = i + rng.uniform_below((self.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published reference outputs of SplitMix64 for seed 0 (Vigna's C).
    #[test]
    fn splitmix64_reference_vector_seed_0() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    /// Frozen known-answer vectors for the seeded generator. These pin the
    /// "same seed ⇒ identical stream across releases" policy from DESIGN.md:
    /// if this test ever needs editing, the trace/bench reproducibility
    /// story breaks and the format version must be bumped alongside it.
    /// (Seed 0 matches the independently published xoshiro256** test vector
    /// for SplitMix64-expanded seeding, e.g. the `rand_xoshiro` crate.)
    #[test]
    fn stdrng_known_answer_vectors() {
        let cases: [(u64, [u64; 4]); 3] = [
            (
                0,
                [
                    0x99EC_5F36_CB75_F2B4,
                    0xBF6E_1F78_4956_452A,
                    0x1A5F_849D_4933_E6E0,
                    0x6AA5_94F1_262D_2D2C,
                ],
            ),
            (
                1,
                [
                    0xB3F2_AF6D_0FC7_10C5,
                    0x853B_5596_4736_4CEA,
                    0x92F8_9756_082A_4514,
                    0x642E_1C7B_C266_A3A7,
                ],
            ),
            (
                0xDEAD_BEEF,
                [
                    0xC555_5444_A74D_7E83,
                    0x65C3_0D37_B4B1_6E38,
                    0x54F7_7320_0A4E_FA23,
                    0x429A_ED75_FB95_8AF7,
                ],
            ),
        ];
        for (seed, expected) in cases {
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, &want) in expected.iter().enumerate() {
                assert_eq!(rng.next_u64(), want, "seed {seed:#x}, output {i}");
            }
        }
    }

    /// Shuffle must produce a permutation (same multiset), and a different
    /// seed must (for this input size) produce a different order.
    #[test]
    fn shuffle_is_a_permutation() {
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..50).collect::<Vec<u32>>(), "seed {seed}");
        }
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(0));
        b.shuffle(&mut StdRng::seed_from_u64(1));
        assert_ne!(a, b);
    }

    /// gen_range stays in bounds for a spread of random ranges and covers
    /// both endpoints of small ones.
    #[test]
    fn gen_range_bounds_hold_for_random_ranges() {
        let mut meta = StdRng::seed_from_u64(0x5EED);
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for _ in 0..200 {
            let lo = meta.gen_range(-1000..1000i64);
            let hi = lo + meta.gen_range(1..1000i64);
            let v = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&v), "{v} outside {lo}..{hi}");
        }
    }

    #[test]
    fn uniform_below_is_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.uniform_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn signed_ranges_cover_negative_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 0i32;
        let mut hi = 0i32;
        for _ in 0..500 {
            let v = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert_eq!(lo, -5);
        assert_eq!(hi, 4);
    }

    #[test]
    fn inclusive_range_includes_endpoint() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_end = false;
        for _ in 0..200 {
            let v = rng.gen_range(0..=3u64);
            assert!(v <= 3);
            saw_end |= v == 3;
        }
        assert!(saw_end);
    }

    #[test]
    fn choose_multiple_is_distinct_and_complete_when_k_exceeds_len() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [10u32, 20, 30];
        let mut got: Vec<u32> = items.choose_multiple(&mut rng, 99).copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn streams_differ_across_seeds() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
