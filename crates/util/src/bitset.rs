//! Word-level bitsets for reachability kernels.
//!
//! The closure frontline's fr-edge propagation (`coherence::windows`)
//! computes a transitive closure per fixpoint round: for each op, the set
//! of ops provably after it. With `n ≤ 256` ops per address that is a few
//! dozen 64-bit words per row — small enough that the whole round is
//! memory-bandwidth-bound, so the representation matters more than the
//! algorithm. [`BitSet`] is that representation: a flat `Vec<u64>` with
//! the three kernels the closure loop needs — set/test, row-into-row
//! union ([`BitSet::union_row`]), and any-intersection
//! ([`any_intersect`]) — written so they compile to straight word loops.
//!
//! A [`BitSet`] is reusable scratch: [`BitSet::reset`] re-shapes it for a
//! new `(rows, bits)` geometry, zeroing in place and allocating only when
//! the geometry outgrows every previous use. The closure keeps one per
//! worker thread, so steady-state analysis rounds allocate nothing.

/// A dense 2-D bit matrix: `rows` rows of `bits` bits, each row a run of
/// `u64` words. With `rows == 1` it is a plain bitset.
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Words per row.
    stride: usize,
}

impl BitSet {
    /// An empty bitset (no allocation until [`reset`](BitSet::reset)).
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Re-shape to `rows × bits`, cleared. Reuses the existing allocation
    /// whenever it is large enough.
    pub fn reset(&mut self, rows: usize, bits: usize) {
        self.stride = bits.div_ceil(64);
        let need = rows * self.stride;
        self.words.clear();
        self.words.resize(need, 0);
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Set bit `bit` of row `row`.
    #[inline]
    pub fn set(&mut self, row: usize, bit: usize) {
        self.words[row * self.stride + (bit >> 6)] |= 1u64 << (bit & 63);
    }

    /// Test bit `bit` of row `row`.
    #[inline]
    pub fn test(&self, row: usize, bit: usize) -> bool {
        self.words[row * self.stride + (bit >> 6)] >> (bit & 63) & 1 == 1
    }

    /// Row `row` as a word slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        &self.words[row * self.stride..(row + 1) * self.stride]
    }

    /// OR row `src` into row `dst` (`dst |= src`).
    #[inline]
    pub fn union_row(&mut self, dst: usize, src: usize) {
        debug_assert_ne!(dst, src);
        let stride = self.stride;
        let (d, s) = if dst < src {
            let (a, b) = self.words.split_at_mut(src * stride);
            (&mut a[dst * stride..dst * stride + stride], &b[..stride])
        } else {
            let (a, b) = self.words.split_at_mut(dst * stride);
            (&mut b[..stride], &a[src * stride..src * stride + stride])
        };
        for (x, y) in d.iter_mut().zip(s) {
            *x |= *y;
        }
    }

    /// OR the external word slice `src` into row `dst`.
    #[inline]
    pub fn union_from(&mut self, dst: usize, src: &[u64]) {
        let start = dst * self.stride;
        for (x, y) in self.words[start..start + self.stride].iter_mut().zip(src) {
            *x |= *y;
        }
    }

    /// Copy the external word slice `src` over row `dst`.
    #[inline]
    pub fn copy_into(&mut self, dst: usize, src: &[u64]) {
        let start = dst * self.stride;
        self.words[start..start + self.stride].copy_from_slice(src);
    }

    /// True if row `row` shares any set bit with the word slice `other`.
    #[inline]
    pub fn row_intersects(&self, row: usize, other: &[u64]) -> bool {
        any_intersect(self.row(row), other)
    }
}

/// True if two word slices share any set bit (`(a & b) != 0` anywhere).
#[inline]
pub fn any_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// A single reusable bit row (helper for scratch vectors that are not part
/// of a matrix): clear + set/test over a `Vec<u64>`.
#[derive(Clone, Debug, Default)]
pub struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    /// An empty row.
    pub fn new() -> Self {
        BitRow::default()
    }

    /// Re-size to `bits` bits, cleared, reusing the allocation.
    pub fn reset(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
    }

    /// Set bit `bit`.
    #[inline]
    pub fn set(&mut self, bit: usize) {
        self.words[bit >> 6] |= 1u64 << (bit & 63);
    }

    /// Test bit `bit`.
    #[inline]
    pub fn test(&self, bit: usize) -> bool {
        self.words[bit >> 6] >> (bit & 63) & 1 == 1
    }

    /// The backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_roundtrip_across_word_boundaries() {
        let mut b = BitSet::new();
        b.reset(3, 130);
        for bit in [0usize, 63, 64, 127, 128, 129] {
            assert!(!b.test(1, bit));
            b.set(1, bit);
            assert!(b.test(1, bit), "bit {bit}");
        }
        // Other rows untouched.
        for bit in [0usize, 63, 64, 127, 128, 129] {
            assert!(!b.test(0, bit));
            assert!(!b.test(2, bit));
        }
    }

    #[test]
    fn union_row_merges_in_both_directions() {
        let mut b = BitSet::new();
        b.reset(2, 100);
        b.set(0, 3);
        b.set(1, 70);
        b.union_row(0, 1);
        assert!(b.test(0, 3) && b.test(0, 70));
        assert!(!b.test(1, 3));
        b.union_row(1, 0);
        assert!(b.test(1, 3) && b.test(1, 70));
    }

    #[test]
    fn reset_reshapes_and_clears() {
        let mut b = BitSet::new();
        b.reset(4, 64);
        b.set(3, 63);
        b.reset(2, 200);
        assert_eq!(b.stride(), 4);
        for row in 0..2 {
            for bit in 0..200 {
                assert!(!b.test(row, bit), "({row},{bit}) must be cleared");
            }
        }
    }

    #[test]
    fn any_intersect_finds_shared_bits() {
        let mut row = BitRow::new();
        row.reset(128);
        row.set(100);
        let mut b = BitSet::new();
        b.reset(1, 128);
        assert!(!b.row_intersects(0, row.words()));
        b.set(0, 100);
        assert!(b.row_intersects(0, row.words()));
        assert!(any_intersect(&[0b1010], &[0b0010]));
        assert!(!any_intersect(&[0b1010], &[0b0101]));
        assert!(!any_intersect(&[], &[]));
    }

    #[test]
    fn copy_into_overwrites_row() {
        let mut b = BitSet::new();
        b.reset(2, 64);
        b.set(0, 5);
        b.copy_into(0, &[1u64 << 9]);
        assert!(!b.test(0, 5));
        assert!(b.test(0, 9));
    }
}
