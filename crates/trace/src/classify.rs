//! Instance classification against the Figure 5.3 complexity table.
//!
//! Given a (single-address) VMC instance, determine which restricted case it
//! falls into and therefore which algorithm applies and what the known
//! worst-case complexity is. The two cells the paper leaves open (§7) are
//! reported as [`KnownComplexity::Open`].

use crate::index::AddrOps;
use crate::op::Addr;
use crate::trace::Trace;
use std::fmt;

/// Operation mix of an instance: simple reads/writes only, RMWs only, or a
/// mixture of both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpMix {
    /// Only `R` and `W` operations.
    SimpleOnly,
    /// Only `RW` (atomic read-modify-write) operations.
    RmwOnly,
    /// Both kinds appear.
    Mixed,
}

/// Known worst-case complexity of a Figure 5.3 cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KnownComplexity {
    /// Solvable in O(n) time.
    Linear,
    /// Solvable in O(n log n) time.
    Linearithmic,
    /// Solvable in O(n^2) time.
    Quadratic,
    /// Solvable in O(n^k) time for k process histories (polynomial for
    /// constant k).
    PolyInNExpK,
    /// NP-complete.
    NpComplete,
    /// Open problem (paper §7).
    Open,
}

impl fmt::Display for KnownComplexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnownComplexity::Linear => write!(f, "O(n)"),
            KnownComplexity::Linearithmic => write!(f, "O(n lg n)"),
            KnownComplexity::Quadratic => write!(f, "O(n^2)"),
            KnownComplexity::PolyInNExpK => write!(f, "O(n^k)"),
            KnownComplexity::NpComplete => write!(f, "NP-Complete"),
            KnownComplexity::Open => write!(f, "? (open, paper §7)"),
        }
    }
}

/// Structural profile of a single-address instance: everything Figure 5.3
/// conditions on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceProfile {
    /// Number of non-empty process histories.
    pub num_procs: usize,
    /// Total operations.
    pub num_ops: usize,
    /// Maximum operations in any single process history.
    pub max_ops_per_proc: usize,
    /// Maximum number of writes of any single value (counting RMW write
    /// components).
    pub max_writes_per_value: usize,
    /// Operation mix.
    pub mix: OpMix,
}

/// The Figure 5.3 row that applies to an instance, in priority order of the
/// tractable special cases our dispatcher exploits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fig53Case {
    /// Every process issues at most one operation.
    OneOpPerProc,
    /// At most two operations per process (complexity open for simple ops;
    /// NP-complete for RMWs).
    TwoOpsPerProc,
    /// Three or more operations in some process.
    ThreePlusOpsPerProc,
    /// Each value written at most once (the read-map is determined).
    OneWritePerValue,
    /// Some value written exactly twice and none more.
    TwoWritesPerValue,
    /// Some value written three or more times.
    ThreePlusWritesPerValue,
}

impl InstanceProfile {
    /// Profile the operations of `trace` at `addr` (a single O(ops at addr)
    /// pass over a freshly built index entry). When several addresses are
    /// profiled, build an [`crate::AddrIndex`] once and use
    /// [`InstanceProfile::of_ops`] per entry instead.
    pub fn of(trace: &Trace, addr: Addr) -> InstanceProfile {
        InstanceProfile::of_ops(&AddrOps::of(trace, addr))
    }

    /// Profile a pre-built per-address index entry in O(procs + values):
    /// everything Figure 5.3 conditions on is already cached on the entry.
    pub fn of_ops(ops: &AddrOps) -> InstanceProfile {
        let mix = if !ops.has_rmw() {
            OpMix::SimpleOnly
        } else if ops.all_rmw() {
            OpMix::RmwOnly
        } else {
            OpMix::Mixed
        };
        InstanceProfile {
            num_procs: ops.nonempty_procs(),
            num_ops: ops.num_ops(),
            max_ops_per_proc: ops.max_ops_per_proc(),
            max_writes_per_value: ops.max_writes_per_value(),
            mix,
        }
    }

    /// The restriction rows of Figure 5.3 that this instance satisfies.
    pub fn cases(&self) -> Vec<Fig53Case> {
        let mut cases = Vec::new();
        match self.max_ops_per_proc {
            0 | 1 => cases.push(Fig53Case::OneOpPerProc),
            2 => cases.push(Fig53Case::TwoOpsPerProc),
            _ => cases.push(Fig53Case::ThreePlusOpsPerProc),
        }
        match self.max_writes_per_value {
            0 | 1 => cases.push(Fig53Case::OneWritePerValue),
            2 => cases.push(Fig53Case::TwoWritesPerValue),
            _ => cases.push(Fig53Case::ThreePlusWritesPerValue),
        }
        cases
    }

    /// The best (lowest) known worst-case complexity for deciding coherence
    /// of this instance using the algorithms in the paper, assuming *no*
    /// auxiliary information (no write order). Mirrors Figure 5.3:
    ///
    /// | restriction | simple R/W | RMW |
    /// |---|---|---|
    /// | 1 op/process | O(n lg n) | O(n^2) |
    /// | 2 ops/process | ? | NP-complete |
    /// | 3+ ops/process | NP-complete | NP-complete |
    /// | 1 write/value | O(n) | O(n lg n) |
    /// | 2 writes/value | NP-complete | ? |
    /// | 3+ writes/value | NP-complete | NP-complete |
    ///
    /// A constant number of processes always gives O(n^k); we report the
    /// sharper special-case bound when one applies.
    pub fn known_complexity(&self) -> KnownComplexity {
        use KnownComplexity::*;
        let rmw = self.mix == OpMix::RmwOnly;
        // Tractable rows first (sharpest bound wins).
        if self.max_writes_per_value <= 1 {
            return if rmw { Linearithmic } else { Linear };
        }
        if self.max_ops_per_proc <= 1 {
            return if rmw { Quadratic } else { Linearithmic };
        }
        // Hard / open rows.
        if self.max_ops_per_proc == 2 && !rmw && self.mix == OpMix::SimpleOnly {
            return Open; // 2 simple ops/process: open problem (§7)
        }
        if rmw && self.max_writes_per_value == 2 {
            return Open; // RMW with ≤2 writes/value: open problem (§7)
        }
        NpComplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::trace::TraceBuilder;

    #[test]
    fn profile_counts() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64), Op::w(2u64)])
            .proc([Op::w(1u64)])
            .proc([])
            .build();
        let p = InstanceProfile::of(&t, Addr::ZERO);
        assert_eq!(p.num_procs, 2); // empty history not counted
        assert_eq!(p.num_ops, 4);
        assert_eq!(p.max_ops_per_proc, 3);
        assert_eq!(p.max_writes_per_value, 2); // value 1 written twice
        assert_eq!(p.mix, OpMix::SimpleOnly);
    }

    #[test]
    fn of_ops_matches_of_on_random_traces() {
        use crate::gen::{gen_sc_trace, GenConfig};
        use crate::index::AddrIndex;
        for seed in 0..10u64 {
            let (t, _) = gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: 40,
                addrs: 4,
                seed,
                ..Default::default()
            });
            let idx = AddrIndex::build(&t);
            for ops in idx.iter() {
                assert_eq!(
                    InstanceProfile::of_ops(ops),
                    InstanceProfile::of(&t, ops.addr()),
                    "addr {:?} seed {seed}",
                    ops.addr()
                );
            }
        }
    }

    #[test]
    fn mix_detection() {
        let simple = TraceBuilder::new().proc([Op::w(1u64)]).build();
        assert_eq!(
            InstanceProfile::of(&simple, Addr::ZERO).mix,
            OpMix::SimpleOnly
        );
        let rmw = TraceBuilder::new().proc([Op::rw(0u64, 1u64)]).build();
        assert_eq!(InstanceProfile::of(&rmw, Addr::ZERO).mix, OpMix::RmwOnly);
        let mixed = TraceBuilder::new()
            .proc([Op::w(1u64), Op::rw(1u64, 2u64)])
            .build();
        assert_eq!(InstanceProfile::of(&mixed, Addr::ZERO).mix, OpMix::Mixed);
    }

    #[test]
    fn one_write_per_value_is_linear() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64), Op::r(3u64)])
            .proc([Op::w(3u64)])
            .build();
        assert_eq!(
            InstanceProfile::of(&t, Addr::ZERO).known_complexity(),
            KnownComplexity::Linear
        );
    }

    #[test]
    fn one_op_per_proc_simple_is_nlogn() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(1u64)]) // value written twice, so read-map row doesn't apply
            .proc([Op::r(1u64)])
            .build();
        assert_eq!(
            InstanceProfile::of(&t, Addr::ZERO).known_complexity(),
            KnownComplexity::Linearithmic
        );
    }

    #[test]
    fn two_simple_ops_with_two_writes_is_open() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64)])
            .proc([Op::w(1u64), Op::r(1u64)])
            .build();
        assert_eq!(
            InstanceProfile::of(&t, Addr::ZERO).known_complexity(),
            KnownComplexity::Open
        );
    }

    #[test]
    fn rmw_two_writes_per_value_is_open() {
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(2u64, 3u64)])
            .proc([Op::rw(1u64, 2u64), Op::rw(3u64, 1u64)])
            .build();
        // value 1 written twice, all RMW
        assert_eq!(
            InstanceProfile::of(&t, Addr::ZERO).known_complexity(),
            KnownComplexity::Open
        );
    }

    #[test]
    fn three_ops_two_writes_simple_is_np_complete() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64), Op::w(2u64)])
            .proc([Op::w(1u64), Op::r(2u64), Op::w(2u64)])
            .build();
        assert_eq!(
            InstanceProfile::of(&t, Addr::ZERO).known_complexity(),
            KnownComplexity::NpComplete
        );
    }

    #[test]
    fn cases_listing() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64)])
            .proc([Op::w(1u64)])
            .build();
        let p = InstanceProfile::of(&t, Addr::ZERO);
        assert_eq!(
            p.cases(),
            vec![Fig53Case::TwoOpsPerProc, Fig53Case::TwoWritesPerValue]
        );
    }
}
