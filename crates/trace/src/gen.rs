//! Workload generators and violation injectors.
//!
//! Generators produce traces that are sequentially consistent (and hence
//! coherent at every address) *by construction*, together with the witness
//! schedule. Injectors then plant specific classes of coherence violations —
//! the error patterns a broken coherence protocol would produce (stale reads,
//! lost writes, corrupted data) — so verifiers can be tested for detection.

use crate::history::ProcessHistory;
use crate::op::{Addr, Op, OpRef, Value};
use crate::schedule::Schedule;
use crate::trace::Trace;
use std::collections::BTreeMap;
use vermem_util::rng::{SliceRandom, StdRng};

/// Configuration for the sequentially-consistent workload generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of processes.
    pub procs: usize,
    /// Total number of operations to generate across all processes.
    pub total_ops: usize,
    /// Number of distinct shared locations.
    pub addrs: usize,
    /// Probability that a generated operation is a write (vs a read), before
    /// RMW selection.
    pub write_fraction: f64,
    /// Probability that a generated operation is an atomic read-modify-write.
    pub rmw_fraction: f64,
    /// Probability that a write reuses a previously written value instead of
    /// allocating a fresh one. Reuse creates multi-writer values, which is
    /// what makes coherence verification combinatorially hard (Figure 5.3).
    pub value_reuse: f64,
    /// RNG seed, for reproducible workloads.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            procs: 4,
            total_ops: 64,
            addrs: 1,
            write_fraction: 0.5,
            rmw_fraction: 0.0,
            value_reuse: 0.3,
            seed: 0xC0FFEE,
        }
    }
}

impl GenConfig {
    /// Single-address configuration (a VMC workload).
    pub fn single_address(procs: usize, total_ops: usize, seed: u64) -> Self {
        GenConfig {
            procs,
            total_ops,
            addrs: 1,
            seed,
            ..Default::default()
        }
    }

    /// All-RMW configuration.
    pub fn all_rmw(procs: usize, total_ops: usize, seed: u64) -> Self {
        GenConfig {
            procs,
            total_ops,
            rmw_fraction: 1.0,
            seed,
            ..Default::default()
        }
    }
}

/// Generate a sequentially consistent trace by simulating an SC machine: at
/// each step a random process performs a random operation against the
/// current memory state. Returns the trace and the witness schedule (the
/// generation order), which [`crate::schedule::check_sc_schedule`] accepts.
pub fn gen_sc_trace(cfg: &GenConfig) -> (Trace, Schedule) {
    assert!(cfg.procs > 0, "need at least one process");
    assert!(cfg.addrs > 0, "need at least one address");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut histories = vec![ProcessHistory::new(); cfg.procs];
    let mut schedule = Schedule::new();
    let mut memory: BTreeMap<Addr, Value> = BTreeMap::new();
    // Values ever written per address, for reuse; fresh values from a counter
    // disjoint from Value::INITIAL.
    let mut written: BTreeMap<Addr, Vec<Value>> = BTreeMap::new();
    let mut next_value: u64 = 1;

    for _ in 0..cfg.total_ops {
        let p = rng.gen_range(0..cfg.procs);
        let addr = Addr(rng.gen_range(0..cfg.addrs) as u32);
        let current = memory.get(&addr).copied().unwrap_or(Value::INITIAL);

        let mut pick_written_value = |rng: &mut StdRng, written: &BTreeMap<Addr, Vec<Value>>| {
            let pool = written.get(&addr).map(|v| v.as_slice()).unwrap_or(&[]);
            if !pool.is_empty() && rng.gen_bool(cfg.value_reuse) {
                *pool.choose(rng).expect("non-empty")
            } else {
                let v = Value(next_value);
                next_value += 1;
                v
            }
        };

        let op = if rng.gen_bool(cfg.rmw_fraction) {
            let w = pick_written_value(&mut rng, &written);
            Op::Rmw {
                addr,
                read: current,
                write: w,
            }
        } else if rng.gen_bool(cfg.write_fraction) {
            let w = pick_written_value(&mut rng, &written);
            Op::Write { addr, value: w }
        } else {
            Op::Read {
                addr,
                value: current,
            }
        };

        if let Some(w) = op.written_value() {
            memory.insert(addr, w);
            written.entry(addr).or_default().push(w);
        }
        let index = histories[p].len() as u32;
        histories[p].push(op);
        schedule.push(OpRef::new(p as u16, index));
    }

    let trace = Trace::from_histories(histories);
    (trace, schedule)
}

/// A class of coherence violation to inject, modelling a protocol failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A read returns a value that no operation ever writes (data
    /// corruption / bit flip on the fill path). Always a real violation.
    CorruptReadValue,
    /// A read returns a value that was written, but earlier in the witness
    /// order than the write it should have observed (a stale cache line
    /// served after a missed invalidation). Usually, but not always, a
    /// violation — another coherent ordering may exist.
    StaleRead,
    /// A write operation is deleted from its history while reads of its
    /// (uniquely written) value remain (a lost/dropped store). Always a real
    /// violation when such a read exists.
    LostWrite,
    /// Two adjacent operations of one process are swapped (an out-of-order
    /// commit that leaked to the trace). May or may not violate coherence.
    ReorderAdjacent,
}

/// Where and what was injected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Injection {
    /// The class of fault injected.
    pub kind: ViolationKind,
    /// The operation (in the mutated trace) at the injection site.
    pub site: OpRef,
    /// True if the mutated trace is *guaranteed* to be incoherent at the
    /// site's address; false if the fault may be masked by another ordering.
    pub guaranteed: bool,
}

/// Inject a violation of the requested kind into `trace`, using `seed` for
/// site selection. Returns the mutated trace and an [`Injection`] report, or
/// `None` if the trace has no eligible site for this kind.
pub fn inject_violation(
    trace: &Trace,
    kind: ViolationKind,
    seed: u64,
) -> Option<(Trace, Injection)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mutated = trace.clone();
    match kind {
        ViolationKind::CorruptReadValue => {
            let reads: Vec<OpRef> = trace
                .iter_ops()
                .filter(|(_, op)| matches!(op, Op::Read { .. }))
                .map(|(r, _)| r)
                .collect();
            let site = *reads.choose(&mut rng)?;
            let op = trace.op(site).expect("site exists");
            let addr = op.addr();
            // A value strictly above anything written or initial at this address.
            let max_written = trace
                .iter_ops()
                .filter_map(|(_, o)| o.written_value())
                .map(|v| v.0)
                .chain(std::iter::once(trace.initial(addr).0))
                .max()
                .unwrap_or(0);
            let bogus = Value(max_written + 1 + rng.gen_range(0..1000u64));
            set_op(&mut mutated, site, Op::Read { addr, value: bogus });
            Some((
                mutated,
                Injection {
                    kind,
                    site,
                    guaranteed: true,
                },
            ))
        }
        ViolationKind::StaleRead => {
            // Pick a read; replace its value with a different value written
            // somewhere at the same address (or the initial value).
            let reads: Vec<(OpRef, Op)> = trace
                .iter_ops()
                .filter(|(_, op)| matches!(op, Op::Read { .. }))
                .collect();
            let (site, op) = *reads.choose(&mut rng)?;
            let addr = op.addr();
            let observed = op.read_value().expect("read");
            let mut pool: Vec<Value> = trace
                .iter_ops()
                .filter(|(_, o)| o.addr() == addr)
                .filter_map(|(_, o)| o.written_value())
                .chain(std::iter::once(trace.initial(addr)))
                .filter(|&v| v != observed)
                .collect();
            pool.sort_unstable();
            pool.dedup();
            let stale = *pool.choose(&mut rng)?;
            set_op(&mut mutated, site, Op::Read { addr, value: stale });
            Some((
                mutated,
                Injection {
                    kind,
                    site,
                    guaranteed: false,
                },
            ))
        }
        ViolationKind::LostWrite => {
            // Find a write of a uniquely-written value that some read observes.
            let mut candidates: Vec<OpRef> = Vec::new();
            for (r, op) in trace.iter_ops() {
                if let Op::Write { addr, value } = op {
                    let unique = trace.writes_per_value(addr).get(&value) == Some(&1);
                    let observed = trace.iter_ops().any(|(r2, o2)| {
                        r2 != r && o2.addr() == addr && o2.read_value() == Some(value)
                    });
                    if unique && observed && value != trace.initial(addr) {
                        candidates.push(r);
                    }
                }
            }
            let site = *candidates.choose(&mut rng)?;
            remove_op(&mut mutated, site);
            Some((
                mutated,
                Injection {
                    kind,
                    site,
                    guaranteed: true,
                },
            ))
        }
        ViolationKind::ReorderAdjacent => {
            let mut candidates: Vec<OpRef> = Vec::new();
            for (p, h) in trace.histories().iter().enumerate() {
                for i in 0..h.len().saturating_sub(1) {
                    if h.op(i) != h.op(i + 1) {
                        candidates.push(OpRef::new(p as u16, i as u32));
                    }
                }
            }
            let site = *candidates.choose(&mut rng)?;
            swap_adjacent(&mut mutated, site);
            Some((
                mutated,
                Injection {
                    kind,
                    site,
                    guaranteed: false,
                },
            ))
        }
    }
}

fn set_op(trace: &mut Trace, site: OpRef, op: Op) {
    let h = trace.history_mut(site.proc).expect("proc exists");
    h.ops_mut()[site.index as usize] = op;
}

fn remove_op(trace: &mut Trace, site: OpRef) {
    let h = trace.history_mut(site.proc).expect("proc exists");
    h.ops_mut().remove(site.index as usize);
}

fn swap_adjacent(trace: &mut Trace, site: OpRef) {
    let h = trace.history_mut(site.proc).expect("proc exists");
    let i = site.index as usize;
    h.ops_mut().swap(i, i + 1);
}

/// Generate a *hard* single-address instance family: `procs` histories of
/// interleaved reads and writes where every value is written exactly
/// `writes_per_value` times. These stress exact solvers (3+ ops/process and
/// 2+ writes/value is the NP-complete regime of Figure 5.3) while remaining
/// coherent by construction.
pub fn gen_hard_coherent(
    procs: usize,
    ops_per_proc: usize,
    writes_per_value: usize,
    seed: u64,
) -> (Trace, Schedule) {
    let cfg = GenConfig {
        procs,
        total_ops: procs * ops_per_proc,
        addrs: 1,
        write_fraction: 0.6,
        rmw_fraction: 0.0,
        value_reuse: if writes_per_value > 1 { 0.5 } else { 0.0 },
        seed,
    };
    gen_sc_trace(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{check_sc_schedule, is_coherent_schedule};

    #[test]
    fn generated_trace_is_sc_with_witness() {
        let cfg = GenConfig {
            procs: 3,
            total_ops: 50,
            addrs: 2,
            seed: 1,
            ..Default::default()
        };
        let (trace, witness) = gen_sc_trace(&cfg);
        assert_eq!(trace.num_ops(), 50);
        check_sc_schedule(&trace, &witness).expect("witness must validate");
    }

    #[test]
    fn generated_single_address_trace_has_coherent_projection_witness() {
        let cfg = GenConfig::single_address(4, 40, 7);
        let (trace, witness) = gen_sc_trace(&cfg);
        // For a single-address trace the SC witness *is* a coherent schedule.
        assert!(is_coherent_schedule(&trace, Addr::ZERO, &witness));
    }

    #[test]
    fn all_rmw_config_generates_only_rmws() {
        let (trace, _) = gen_sc_trace(&GenConfig::all_rmw(2, 20, 3));
        assert!(trace.is_all_rmw());
    }

    #[test]
    fn corrupt_read_is_guaranteed_violation_marker() {
        let (trace, _) = gen_sc_trace(&GenConfig::single_address(3, 30, 11));
        let (mutated, inj) =
            inject_violation(&trace, ViolationKind::CorruptReadValue, 5).expect("has reads");
        assert!(inj.guaranteed);
        let op = mutated.op(inj.site).unwrap();
        // The corrupted value is never written anywhere and isn't initial.
        let v = op.read_value().unwrap();
        assert!(mutated
            .iter_ops()
            .all(|(_, o)| o.written_value() != Some(v)));
        assert_ne!(v, mutated.initial(op.addr()));
    }

    #[test]
    fn lost_write_removes_an_operation() {
        let (trace, _) = gen_sc_trace(&GenConfig::single_address(3, 40, 13));
        if let Some((mutated, inj)) = inject_violation(&trace, ViolationKind::LostWrite, 5) {
            assert_eq!(mutated.num_ops(), trace.num_ops() - 1);
            assert!(inj.guaranteed);
        }
    }

    #[test]
    fn reorder_swaps_two_ops() {
        let (trace, _) = gen_sc_trace(&GenConfig::single_address(2, 20, 17));
        let (mutated, inj) =
            inject_violation(&trace, ViolationKind::ReorderAdjacent, 5).expect("has pairs");
        assert_eq!(mutated.num_ops(), trace.num_ops());
        let i = inj.site.index as usize;
        let h_old = trace.history(inj.site.proc).unwrap();
        let h_new = mutated.history(inj.site.proc).unwrap();
        assert_eq!(h_old.op(i), h_new.op(i + 1));
        assert_eq!(h_old.op(i + 1), h_new.op(i));
    }

    #[test]
    fn stale_read_uses_a_written_or_initial_value() {
        let (trace, _) = gen_sc_trace(&GenConfig::single_address(3, 40, 19));
        if let Some((mutated, inj)) = inject_violation(&trace, ViolationKind::StaleRead, 5) {
            let op = mutated.op(inj.site).unwrap();
            let v = op.read_value().unwrap();
            let legit = mutated
                .iter_ops()
                .any(|(_, o)| o.written_value() == Some(v))
                || v == mutated.initial(op.addr());
            assert!(legit);
            assert!(!inj.guaranteed);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GenConfig {
            seed: 99,
            ..Default::default()
        };
        let (a, _) = gen_sc_trace(&cfg);
        let (b, _) = gen_sc_trace(&cfg);
        assert_eq!(a, b);
    }
}
