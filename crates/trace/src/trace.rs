//! Execution traces: a finite set of process histories plus the initial and
//! (optional) final memory state, as in Definitions 4.1 and 6.1.

use crate::history::ProcessHistory;
use crate::op::{Addr, Op, OpRef, ProcId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A multiprocessor execution trace: one history per process, the initial
/// value `d_I[a]` of each location, and optionally a required final value
/// `d_F[a]` that the last write in any coherent schedule must install.
///
/// Locations with no configured initial value start at [`Value::INITIAL`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Trace {
    histories: Vec<ProcessHistory>,
    initial: BTreeMap<Addr, Value>,
    final_values: BTreeMap<Addr, Value>,
}

impl Trace {
    /// An empty trace with no processes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from per-process histories; process `i` gets id `P_i`.
    pub fn from_histories(histories: impl IntoIterator<Item = ProcessHistory>) -> Self {
        Trace {
            histories: histories.into_iter().collect(),
            ..Default::default()
        }
    }

    /// Add a process history, returning the new process's id.
    pub fn push_history(&mut self, history: ProcessHistory) -> ProcId {
        let id = ProcId(self.histories.len() as u16);
        self.histories.push(history);
        id
    }

    /// Set the initial value `d_I[a]` of a location.
    pub fn set_initial(&mut self, addr: impl Into<Addr>, value: impl Into<Value>) {
        self.initial.insert(addr.into(), value.into());
    }

    /// Require that the last write to `addr` in any valid schedule writes
    /// `value` (the final value `d_F[a]`).
    pub fn set_final(&mut self, addr: impl Into<Addr>, value: impl Into<Value>) {
        self.final_values.insert(addr.into(), value.into());
    }

    /// The initial value of `addr` (`d_I[a]`), defaulting to [`Value::INITIAL`].
    pub fn initial(&self, addr: Addr) -> Value {
        self.initial.get(&addr).copied().unwrap_or(Value::INITIAL)
    }

    /// The required final value of `addr`, if one was specified.
    pub fn final_value(&self, addr: Addr) -> Option<Value> {
        self.final_values.get(&addr).copied()
    }

    /// All explicitly configured initial values.
    pub fn initial_values(&self) -> &BTreeMap<Addr, Value> {
        &self.initial
    }

    /// All configured final-value constraints.
    pub fn final_values(&self) -> &BTreeMap<Addr, Value> {
        &self.final_values
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.histories.len()
    }

    /// Total number of operations across all histories.
    pub fn num_ops(&self) -> usize {
        self.histories.iter().map(|h| h.len()).sum()
    }

    /// The histories, indexed by process id.
    pub fn histories(&self) -> &[ProcessHistory] {
        &self.histories
    }

    /// The history of process `proc`.
    pub fn history(&self, proc: ProcId) -> Option<&ProcessHistory> {
        self.histories.get(proc.0 as usize)
    }

    /// Look up the operation identified by `op_ref`.
    pub fn op(&self, op_ref: OpRef) -> Option<Op> {
        self.history(op_ref.proc)?.op(op_ref.index as usize)
    }

    /// Iterate over `(OpRef, Op)` pairs for all operations, by process then
    /// program order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpRef, Op)> + '_ {
        self.histories.iter().enumerate().flat_map(|(p, h)| {
            h.iter()
                .enumerate()
                .map(move |(i, op)| (OpRef::new(p as u16, i as u32), op))
        })
    }

    /// The set of distinct addresses touched by the trace, sorted.
    pub fn addresses(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self.histories.iter().flat_map(|h| h.addresses()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// True if the trace touches at most one address (a VMC instance).
    pub fn is_single_address(&self) -> bool {
        self.addresses().len() <= 1
    }

    /// Per-address projection: the sub-trace of operations to `addr`, with
    /// program order preserved within each process. Initial/final values for
    /// `addr` carry over. Memory coherence of the full trace is exactly the
    /// conjunction of coherence of each projection (§3).
    ///
    /// Note: operation indices in the projection refer to positions within
    /// the *projected* histories. Use [`Trace::projection_map`] to map them
    /// back to the original trace.
    pub fn project(&self, addr: Addr) -> Trace {
        let mut t = Trace::from_histories(self.histories.iter().map(|h| h.project(addr)));
        if let Some(&v) = self.initial.get(&addr) {
            t.set_initial(addr, v);
        }
        if let Some(&v) = self.final_values.get(&addr) {
            t.set_final(addr, v);
        }
        t
    }

    /// For each process, the original program-order indices of the
    /// operations that touch `addr` (the inverse of [`Trace::project`]).
    pub fn projection_map(&self, addr: Addr) -> Vec<Vec<u32>> {
        self.histories
            .iter()
            .map(|h| {
                h.iter()
                    .enumerate()
                    .filter(|(_, op)| op.addr() == addr)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect()
    }

    /// True if every operation in the trace is an atomic read-modify-write.
    pub fn is_all_rmw(&self) -> bool {
        self.histories.iter().all(|h| h.is_all_rmw())
    }

    /// Maximum history length over all processes.
    pub fn max_ops_per_proc(&self) -> usize {
        self.histories.iter().map(|h| h.len()).max().unwrap_or(0)
    }

    /// For address `addr`, how many times each value is written (including
    /// RMW write components). Used by the Figure 5.3 classifier.
    pub fn writes_per_value(&self, addr: Addr) -> BTreeMap<Value, usize> {
        let mut counts = BTreeMap::new();
        for h in &self.histories {
            for op in h.iter().filter(|o| o.addr() == addr) {
                if let Some(v) = op.written_value() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Mutable history access (used by violation injectors in [`crate::gen`]).
    pub(crate) fn history_mut(&mut self, proc: ProcId) -> Option<&mut ProcessHistory> {
        self.histories.get_mut(proc.0 as usize)
    }

    /// Render this trace in the human-readable text format of
    /// [`crate::fmt`] (derive-free serialization; inverse of
    /// [`Trace::from_text`]).
    pub fn to_text(&self) -> String {
        crate::fmt::format_trace(self)
    }

    /// Parse a trace from the text format of [`crate::fmt`] (inverse of
    /// [`Trace::to_text`]).
    pub fn from_text(input: &str) -> Result<Self, crate::fmt::ParseError> {
        crate::fmt::parse_trace(input)
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Trace[{} procs, {} ops]",
            self.num_procs(),
            self.num_ops()
        )?;
        for (p, h) in self.histories.iter().enumerate() {
            writeln!(f, "  P{p}: {h:?}")?;
        }
        if !self.initial.is_empty() {
            writeln!(f, "  initial: {:?}", self.initial)?;
        }
        if !self.final_values.is_empty() {
            writeln!(f, "  final: {:?}", self.final_values)?;
        }
        Ok(())
    }
}

/// Builder-style helper to assemble traces in tests and examples.
///
/// ```
/// use vermem_trace::{TraceBuilder, Op};
/// let trace = TraceBuilder::new()
///     .proc([Op::w(1u64), Op::r(2u64)])
///     .proc([Op::w(2u64)])
///     .initial(0u32, 0u64)
///     .build();
/// assert_eq!(trace.num_procs(), 2);
/// ```
#[derive(Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a process with the given program-ordered operations.
    pub fn proc(mut self, ops: impl IntoIterator<Item = Op>) -> Self {
        self.trace.push_history(ProcessHistory::from_ops(ops));
        self
    }

    /// Set an initial value.
    pub fn initial(mut self, addr: impl Into<Addr>, value: impl Into<Value>) -> Self {
        self.trace.set_initial(addr, value);
        self
    }

    /// Set a final-value constraint.
    pub fn final_value(mut self, addr: impl Into<Addr>, value: impl Into<Value>) -> Self {
        self.trace.set_final(addr, value);
        self
    }

    /// Finish building.
    pub fn build(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_addr_trace() -> Trace {
        TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(1u32, 2u64),
                Op::read(0u32, 1u64),
            ])
            .proc([Op::read(1u32, 2u64), Op::write(0u32, 3u64)])
            .initial(0u32, 0u64)
            .final_value(0u32, 3u64)
            .build()
    }

    #[test]
    fn counting() {
        let t = two_addr_trace();
        assert_eq!(t.num_procs(), 2);
        assert_eq!(t.num_ops(), 5);
        assert_eq!(t.max_ops_per_proc(), 3);
        assert_eq!(t.addresses(), vec![Addr(0), Addr(1)]);
        assert!(!t.is_single_address());
    }

    #[test]
    fn op_lookup_by_ref() {
        let t = two_addr_trace();
        assert_eq!(t.op(OpRef::new(1u16, 1)), Some(Op::write(0u32, 3u64)));
        assert_eq!(t.op(OpRef::new(1u16, 2)), None);
        assert_eq!(t.op(OpRef::new(5u16, 0)), None);
    }

    #[test]
    fn iter_ops_yields_all_in_proc_then_program_order() {
        let t = two_addr_trace();
        let refs: Vec<OpRef> = t.iter_ops().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 5);
        assert!(refs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn projection_carries_initial_and_final() {
        let t = two_addr_trace();
        let p = t.project(Addr(0));
        assert!(p.is_single_address());
        assert_eq!(p.num_ops(), 3);
        assert_eq!(p.initial(Addr(0)), Value(0));
        assert_eq!(p.final_value(Addr(0)), Some(Value(3)));
        // Address 1's projection has no configured constraints.
        let p1 = t.project(Addr(1));
        assert_eq!(p1.final_value(Addr(1)), None);
    }

    #[test]
    fn projection_map_round_trips() {
        let t = two_addr_trace();
        let map = t.projection_map(Addr(0));
        assert_eq!(map, vec![vec![0, 2], vec![1]]);
        let proj = t.project(Addr(0));
        for (p, idxs) in map.iter().enumerate() {
            for (j, &orig) in idxs.iter().enumerate() {
                assert_eq!(
                    proj.op(OpRef::new(p as u16, j as u32)),
                    t.op(OpRef::new(p as u16, orig))
                );
            }
        }
    }

    #[test]
    fn default_initial_value_is_zero() {
        let t = Trace::new();
        assert_eq!(t.initial(Addr(42)), Value::INITIAL);
    }

    #[test]
    fn text_round_trip_via_trace_methods() {
        let t = two_addr_trace();
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
    }

    #[test]
    fn writes_per_value_counts_rmw_write_components() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::rw(1u64, 2u64)])
            .proc([Op::w(2u64)])
            .build();
        let counts = t.writes_per_value(Addr::ZERO);
        assert_eq!(counts.get(&Value(1)), Some(&1));
        assert_eq!(counts.get(&Value(2)), Some(&2));
    }
}
