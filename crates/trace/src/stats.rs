//! Trace statistics: the quantitative profile of an execution — operation
//! mix, per-address sharing and contention, value-reuse — used by the CLI
//! and useful when deciding which verification strategy will be cheap.

use crate::op::Addr;
use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// Per-address profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrStats {
    /// Total operations touching the address.
    pub ops: usize,
    /// Operations with a read component.
    pub reads: usize,
    /// Operations with a write component.
    pub writes: usize,
    /// Atomic read-modify-writes.
    pub rmws: usize,
    /// Distinct processes touching the address.
    pub sharers: usize,
    /// Distinct processes writing the address.
    pub writers: usize,
    /// Distinct values written.
    pub distinct_values: usize,
    /// Maximum times any single value is written.
    pub max_writes_per_value: usize,
}

impl AddrStats {
    /// A location written by more than one process (true sharing with
    /// write contention — where coherence protocols earn their keep).
    pub fn is_write_shared(&self) -> bool {
        self.writers > 1
    }

    /// Read-only addresses never constrain schedules beyond the initial
    /// value.
    pub fn is_read_only(&self) -> bool {
        self.writes == 0
    }
}

/// Whole-trace statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of processes with at least one operation.
    pub active_procs: usize,
    /// Total operations.
    pub total_ops: usize,
    /// Per-address profiles.
    pub per_addr: BTreeMap<Addr, AddrStats>,
}

impl TraceStats {
    /// Compute statistics for a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut per_addr: BTreeMap<Addr, AddrStats> = BTreeMap::new();
        let mut sharers: BTreeMap<Addr, BTreeSet<u16>> = BTreeMap::new();
        let mut writers: BTreeMap<Addr, BTreeSet<u16>> = BTreeMap::new();
        let mut value_writes: BTreeMap<Addr, BTreeMap<u64, usize>> = BTreeMap::new();

        for (r, op) in trace.iter_ops() {
            let addr = op.addr();
            let s = per_addr.entry(addr).or_insert(AddrStats {
                ops: 0,
                reads: 0,
                writes: 0,
                rmws: 0,
                sharers: 0,
                writers: 0,
                distinct_values: 0,
                max_writes_per_value: 0,
            });
            s.ops += 1;
            if op.is_reading() {
                s.reads += 1;
            }
            if op.is_writing() {
                s.writes += 1;
                writers.entry(addr).or_default().insert(r.proc.0);
                if let Some(v) = op.written_value() {
                    *value_writes
                        .entry(addr)
                        .or_default()
                        .entry(v.0)
                        .or_insert(0) += 1;
                }
            }
            if op.is_rmw() {
                s.rmws += 1;
            }
            sharers.entry(addr).or_default().insert(r.proc.0);
        }

        for (addr, s) in per_addr.iter_mut() {
            s.sharers = sharers.get(addr).map_or(0, BTreeSet::len);
            s.writers = writers.get(addr).map_or(0, BTreeSet::len);
            if let Some(vw) = value_writes.get(addr) {
                s.distinct_values = vw.len();
                s.max_writes_per_value = vw.values().copied().max().unwrap_or(0);
            }
        }

        TraceStats {
            active_procs: trace.histories().iter().filter(|h| !h.is_empty()).count(),
            total_ops: trace.num_ops(),
            per_addr,
        }
    }

    /// Addresses written by more than one process.
    pub fn write_shared_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.per_addr
            .iter()
            .filter(|(_, s)| s.is_write_shared())
            .map(|(&a, _)| a)
    }

    /// Fraction of operations that are reads (0.0 when empty).
    pub fn read_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        let reads: usize = self.per_addr.values().map(|s| s.reads).sum();
        reads as f64 / self.total_ops as f64
    }

    /// Render as a `trace` section of the unified run report (the one
    /// shared pretty-printer in [`vermem_util::obs::report`]).
    pub fn to_report(&self) -> vermem_util::obs::report::RunReportSection {
        vermem_util::obs::report::RunReportSection::new("trace")
            .with("procs", self.active_procs)
            .with("ops", self.total_ops)
            .with("addrs", self.per_addr.len())
            .with("write_shared", self.write_shared_addrs().count())
            .with("read_fraction", self.read_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::read(1u32, 0u64),
                Op::rmw(0u32, 1u64, 2u64),
            ])
            .proc([Op::read(0u32, 2u64), Op::write(0u32, 1u64)])
            .proc([])
            .build()
    }

    #[test]
    fn counts_are_right() {
        let stats = TraceStats::of(&sample());
        assert_eq!(stats.active_procs, 2);
        assert_eq!(stats.total_ops, 5);
        let a0 = &stats.per_addr[&Addr(0)];
        assert_eq!(a0.ops, 4);
        assert_eq!(a0.reads, 2); // R + RMW read component
        assert_eq!(a0.writes, 3); // W + RMW + W
        assert_eq!(a0.rmws, 1);
        assert_eq!(a0.sharers, 2);
        assert_eq!(a0.writers, 2);
        assert_eq!(a0.distinct_values, 2); // 1 and 2
        assert_eq!(a0.max_writes_per_value, 2); // value 1 written twice
    }

    #[test]
    fn sharing_predicates() {
        let stats = TraceStats::of(&sample());
        assert!(stats.per_addr[&Addr(0)].is_write_shared());
        assert!(!stats.per_addr[&Addr(1)].is_write_shared());
        assert!(stats.per_addr[&Addr(1)].is_read_only());
        let shared: Vec<Addr> = stats.write_shared_addrs().collect();
        assert_eq!(shared, vec![Addr(0)]);
    }

    #[test]
    fn read_fraction() {
        let stats = TraceStats::of(&sample());
        // 3 reading components of 5 ops.
        assert!((stats.read_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(TraceStats::of(&Trace::new()).read_fraction(), 0.0);
    }

    #[test]
    fn empty_trace() {
        let stats = TraceStats::of(&Trace::new());
        assert_eq!(stats.total_ops, 0);
        assert!(stats.per_addr.is_empty());
    }
}
