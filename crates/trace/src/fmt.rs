//! Human-readable text format for traces.
//!
//! ```text
//! # comments start with '#'
//! init 0 = 5          # d_I[0] = 5
//! final 0 = 7         # d_F[0] = 7
//! P0: W(0,1) R(0,1) RW(0,1,2)
//! P1: R(0,2)
//! ```
//!
//! Process lines must appear in order `P0`, `P1`, ... Addresses and values
//! are unsigned decimal integers.

use crate::history::ProcessHistory;
use crate::op::Op;
use crate::trace::Trace;
use std::fmt::Write as _;

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Render a trace in the text format. Inverse of [`parse_trace`].
pub fn format_trace(trace: &Trace) -> String {
    let mut out = String::new();
    for (&addr, &value) in trace.initial_values() {
        let _ = writeln!(out, "init {} = {}", addr.0, value.0);
    }
    for (&addr, &value) in trace.final_values() {
        let _ = writeln!(out, "final {} = {}", addr.0, value.0);
    }
    for (p, h) in trace.histories().iter().enumerate() {
        let _ = write!(out, "P{p}:");
        for op in h.iter() {
            let _ = write!(out, " {op}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Parse a trace from the text format. Inverse of [`format_trace`].
pub fn parse_trace(input: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::new();
    let mut next_proc = 0usize;
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("init ") {
            let (addr, value) = parse_assignment(rest, lineno)?;
            trace.set_initial(addr, value);
        } else if let Some(rest) = line.strip_prefix("final ") {
            let (addr, value) = parse_assignment(rest, lineno)?;
            trace.set_final(addr, value);
        } else if let Some(rest) = line.strip_prefix('P') {
            let (id_str, ops_str) = rest
                .split_once(':')
                .ok_or_else(|| err(lineno, "expected ':' after process id"))?;
            let id: usize = id_str
                .trim()
                .parse()
                .map_err(|_| err(lineno, format!("invalid process id 'P{id_str}'")))?;
            if id != next_proc {
                return Err(err(
                    lineno,
                    format!("process lines must be in order; expected P{next_proc}, got P{id}"),
                ));
            }
            next_proc += 1;
            let mut history = ProcessHistory::new();
            for token in ops_str.split_whitespace() {
                history.push(parse_op(token, lineno)?);
            }
            trace.push_history(history);
        } else {
            return Err(err(lineno, format!("unrecognized line: '{line}'")));
        }
    }
    Ok(trace)
}

fn parse_assignment(rest: &str, lineno: usize) -> Result<(u32, u64), ParseError> {
    let (a, v) = rest
        .split_once('=')
        .ok_or_else(|| err(lineno, "expected 'addr = value'"))?;
    let addr = a
        .trim()
        .parse::<u32>()
        .map_err(|_| err(lineno, format!("invalid address '{}'", a.trim())))?;
    let value = v
        .trim()
        .parse::<u64>()
        .map_err(|_| err(lineno, format!("invalid value '{}'", v.trim())))?;
    Ok((addr, value))
}

fn parse_op(token: &str, lineno: usize) -> Result<Op, ParseError> {
    let (kind, args) = token
        .split_once('(')
        .ok_or_else(|| err(lineno, format!("malformed operation '{token}'")))?;
    let args = args
        .strip_suffix(')')
        .ok_or_else(|| err(lineno, format!("missing ')' in '{token}'")))?;
    let parts: Vec<&str> = args.split(',').map(str::trim).collect();
    let num = |s: &str| -> Result<u64, ParseError> {
        s.parse::<u64>()
            .map_err(|_| err(lineno, format!("invalid number '{s}' in '{token}'")))
    };
    match (kind, parts.as_slice()) {
        ("R", [a, v]) => Ok(Op::read(num(a)? as u32, num(v)?)),
        ("W", [a, v]) => Ok(Op::write(num(a)? as u32, num(v)?)),
        ("RW", [a, r, w]) => Ok(Op::rmw(num(a)? as u32, num(r)?, num(w)?)),
        // Single-address shorthand from the paper: R(d), W(d), RW(dr,dw).
        ("R", [v]) => Ok(Op::r(num(v)?)),
        ("W", [v]) => Ok(Op::w(num(v)?)),
        ("RW", [r, w]) => Ok(Op::rw(num(r)?, num(w)?)),
        _ => Err(err(lineno, format!("unrecognized operation '{token}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Addr, Value};
    use crate::trace::TraceBuilder;

    #[test]
    fn round_trip() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::read(0u32, 1u64),
                Op::rmw(0u32, 1u64, 2u64),
            ])
            .proc([Op::read(0u32, 2u64)])
            .initial(0u32, 0u64)
            .final_value(0u32, 2u64)
            .build();
        let text = format_trace(&t);
        let parsed = parse_trace(&text).expect("round trip parses");
        assert_eq!(parsed, t);
    }

    #[test]
    fn parses_shorthand_and_comments() {
        let t =
            parse_trace("# single-address example\nP0: W(1) R(1)  # inline comment\nP1: RW(1,2)\n")
                .unwrap();
        assert_eq!(t.num_procs(), 2);
        assert_eq!(
            t.op(crate::op::OpRef::new(1u16, 0)),
            Some(Op::rw(1u64, 2u64))
        );
    }

    #[test]
    fn parses_init_and_final() {
        let t = parse_trace("init 3 = 9\nfinal 3 = 11\nP0: W(3,11)\n").unwrap();
        assert_eq!(t.initial(Addr(3)), Value(9));
        assert_eq!(t.final_value(Addr(3)), Some(Value(11)));
    }

    #[test]
    fn rejects_out_of_order_process_ids() {
        let e = parse_trace("P1: W(1)\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected P0"));
    }

    #[test]
    fn rejects_malformed_op() {
        assert!(parse_trace("P0: W(1\n").is_err());
        assert!(parse_trace("P0: X(1)\n").is_err());
        assert!(parse_trace("P0: W(a)\n").is_err());
    }

    #[test]
    fn rejects_unknown_line() {
        let e = parse_trace("hello\n").unwrap_err();
        assert!(e.message.contains("unrecognized"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = parse_trace("").unwrap();
        assert_eq!(t.num_procs(), 0);
    }
}
