//! Read-mapping extraction: given a valid schedule, recover which write
//! served each read — the *read-map* of Gibbons & Korach that, together
//! with the write order, makes verification polynomial (§5.2, §6.3).

use crate::op::{Addr, OpRef};
use crate::schedule::Schedule;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// The source of a read's value in a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadSource {
    /// The read observed the initial value `d_I` (no write preceded it).
    Initial,
    /// The read observed this write (the immediately preceding write to
    /// the same address).
    Write(OpRef),
}

/// Extract the read-map of a schedule: for every operation with a read
/// component (reads and RMWs), the write that served it. The schedule is
/// **assumed valid** for the addresses it covers (run the checkers in
/// [`crate::check_coherent_schedule`] / [`crate::check_sc_schedule`]
/// first); on an invalid schedule the mapping reflects schedule positions,
/// not observed values.
pub fn read_mapping(trace: &Trace, schedule: &Schedule) -> BTreeMap<OpRef, ReadSource> {
    let mut last_write: BTreeMap<Addr, OpRef> = BTreeMap::new();
    let mut mapping = BTreeMap::new();
    for &r in schedule.refs() {
        let Some(op) = trace.op(r) else { continue };
        let addr = op.addr();
        if op.is_reading() {
            let source = match last_write.get(&addr) {
                Some(&w) => ReadSource::Write(w),
                None => ReadSource::Initial,
            };
            mapping.insert(r, source);
        }
        if op.is_writing() {
            last_write.insert(addr, r);
        }
    }
    mapping
}

/// Extract the per-address write order of a schedule: for every address,
/// the write-capable operations in schedule order — exactly the §5.2
/// augmentation input for [`crate::Trace`]-based verification.
pub fn write_orders(trace: &Trace, schedule: &Schedule) -> BTreeMap<Addr, Vec<OpRef>> {
    let mut orders: BTreeMap<Addr, Vec<OpRef>> = BTreeMap::new();
    for &r in schedule.refs() {
        let Some(op) = trace.op(r) else { continue };
        if op.is_writing() {
            orders.entry(op.addr()).or_default().push(r);
        }
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::trace::TraceBuilder;

    fn sched(pairs: &[(u16, u32)]) -> Schedule {
        pairs.iter().map(|&(p, i)| OpRef::new(p, i)).collect()
    }

    #[test]
    fn maps_reads_to_their_writers() {
        // P0: W(1) R(1); P1: R(0) W(2) — schedule: R(0), W(1), R(1), W(2).
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64)])
            .proc([Op::r(0u64), Op::w(2u64)])
            .build();
        let s = sched(&[(1, 0), (0, 0), (0, 1), (1, 1)]);
        assert!(crate::check_coherent_schedule(&t, Addr::ZERO, &s).is_ok());
        let map = read_mapping(&t, &s);
        assert_eq!(map[&OpRef::new(1u16, 0)], ReadSource::Initial);
        assert_eq!(
            map[&OpRef::new(0u16, 1)],
            ReadSource::Write(OpRef::new(0u16, 0))
        );
    }

    #[test]
    fn rmw_maps_and_serves() {
        // RW(0,1) then RW(1,2): the second reads the first.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 2u64)])
            .build();
        let s = sched(&[(0, 0), (1, 0)]);
        let map = read_mapping(&t, &s);
        assert_eq!(map[&OpRef::new(0u16, 0)], ReadSource::Initial);
        assert_eq!(
            map[&OpRef::new(1u16, 0)],
            ReadSource::Write(OpRef::new(0u16, 0))
        );
    }

    #[test]
    fn write_orders_split_by_address() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 2u64)])
            .proc([Op::write(0u32, 3u64)])
            .build();
        let s = sched(&[(1, 0), (0, 0), (0, 1)]);
        let orders = write_orders(&t, &s);
        assert_eq!(
            orders[&Addr(0)],
            vec![OpRef::new(1u16, 0), OpRef::new(0u16, 0)]
        );
        assert_eq!(orders[&Addr(1)], vec![OpRef::new(0u16, 1)]);
    }

    #[test]
    fn round_trips_with_the_write_order_solver() {
        // A schedule's extracted write order must re-verify via §5.2.
        use crate::gen::{gen_sc_trace, GenConfig};
        for seed in 0..10 {
            let (t, witness) = gen_sc_trace(&GenConfig::single_address(3, 30, seed));
            let orders = write_orders(&t, &witness);
            // (Verified in the coherence crate's tests; here just shape.)
            let total_writes: usize = orders.values().map(Vec::len).sum();
            let expected = t.iter_ops().filter(|(_, op)| op.is_writing()).count();
            assert_eq!(total_writes, expected, "seed {seed}");
        }
    }
}
