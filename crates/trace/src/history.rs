//! Process histories: the per-processor, program-ordered operation sequences
//! that make up an execution trace (§3 of the paper).

use crate::op::{Addr, Op, Value};
use std::fmt;

/// A sequence of memory operations issued by one process, in program order,
/// including the values read/written by each operation.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct ProcessHistory {
    ops: Vec<Op>,
}

impl ProcessHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a history from an operation sequence (program order).
    pub fn from_ops(ops: impl IntoIterator<Item = Op>) -> Self {
        ProcessHistory {
            ops: ops.into_iter().collect(),
        }
    }

    /// Append an operation at the end of program order.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of operations in the history.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operation at program-order position `index`.
    pub fn op(&self, index: usize) -> Option<Op> {
        self.ops.get(index).copied()
    }

    /// Iterate over operations in program order.
    pub fn iter(&self) -> impl Iterator<Item = Op> + '_ {
        self.ops.iter().copied()
    }

    /// The set of distinct addresses touched by this history, sorted.
    pub fn addresses(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self.ops.iter().map(|o| o.addr()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// A new history containing only the operations to `addr`, preserving
    /// program order. This is the per-address projection used to turn a
    /// multi-location trace into single-location VMC instances.
    pub fn project(&self, addr: Addr) -> ProcessHistory {
        ProcessHistory {
            ops: self
                .ops
                .iter()
                .copied()
                .filter(|o| o.addr() == addr)
                .collect(),
        }
    }

    /// True if every operation in the history is an atomic read-modify-write.
    pub fn is_all_rmw(&self) -> bool {
        self.ops.iter().all(|o| o.is_rmw())
    }

    /// Count of operations with a write component.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_writing()).count()
    }

    /// Count of operations with a read component.
    pub fn read_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_reading()).count()
    }

    /// All values written by this history (with multiplicity, program order).
    pub fn written_values(&self) -> impl Iterator<Item = Value> + '_ {
        self.ops.iter().filter_map(|o| o.written_value())
    }

    /// Mutable access for in-place mutation (used by violation injectors).
    pub(crate) fn ops_mut(&mut self) -> &mut Vec<Op> {
        &mut self.ops
    }
}

impl fmt::Debug for ProcessHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for op in &self.ops {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{op:?}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Op> for ProcessHistory {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        ProcessHistory::from_ops(iter)
    }
}

impl IntoIterator for ProcessHistory {
    type Item = Op;
    type IntoIter = std::vec::IntoIter<Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a ProcessHistory {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProcessHistory {
        ProcessHistory::from_ops([
            Op::write(0u32, 1u64),
            Op::read(1u32, 0u64),
            Op::rmw(0u32, 1u64, 2u64),
        ])
    }

    #[test]
    fn len_and_indexing() {
        let h = sample();
        assert_eq!(h.len(), 3);
        assert_eq!(h.op(1), Some(Op::read(1u32, 0u64)));
        assert_eq!(h.op(3), None);
    }

    #[test]
    fn projection_preserves_program_order() {
        let h = sample();
        let p = h.project(Addr(0));
        assert_eq!(p.ops(), &[Op::write(0u32, 1u64), Op::rmw(0u32, 1u64, 2u64)]);
    }

    #[test]
    fn projection_to_untouched_address_is_empty() {
        assert!(sample().project(Addr(7)).is_empty());
    }

    #[test]
    fn addresses_are_sorted_and_deduped() {
        assert_eq!(sample().addresses(), vec![Addr(0), Addr(1)]);
    }

    #[test]
    fn counts() {
        let h = sample();
        assert_eq!(h.write_count(), 2); // W and RMW
        assert_eq!(h.read_count(), 2); // R and RMW
        assert!(!h.is_all_rmw());
        assert!(ProcessHistory::from_ops([Op::rw(0u64, 1u64)]).is_all_rmw());
    }

    #[test]
    fn written_values_includes_rmw_write_component() {
        let vals: Vec<Value> = sample().written_values().collect();
        assert_eq!(vals, vec![Value(1), Value(2)]);
    }
}
