//! Compact binary encoding of traces, for storing large captured executions.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   u32 = 0x564D_454D ("VMEM")
//! version u16 = 1
//! procs   u16
//! n_init  u32   then n_init  × (addr u32, value u64)
//! n_final u32   then n_final × (addr u32, value u64)
//! per process: n_ops u32, then n_ops × op
//! op: tag u8 (0=R, 1=W, 2=RW), addr u32, value(s) u64 [×2 for RW]
//! ```

use crate::history::ProcessHistory;
use crate::op::{Addr, Op, Value};
use crate::trace::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x564D_454D;
const VERSION: u16 = 1;

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the expected magic number.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the structure was complete.
    Truncated,
    /// Unknown operation tag byte.
    BadOpTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadOpTag(t) => write!(f, "unknown op tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a trace to the binary format.
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.num_ops() * 13);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(trace.num_procs() as u16);
    buf.put_u32_le(trace.initial_values().len() as u32);
    for (&addr, &value) in trace.initial_values() {
        buf.put_u32_le(addr.0);
        buf.put_u64_le(value.0);
    }
    buf.put_u32_le(trace.final_values().len() as u32);
    for (&addr, &value) in trace.final_values() {
        buf.put_u32_le(addr.0);
        buf.put_u64_le(value.0);
    }
    for h in trace.histories() {
        buf.put_u32_le(h.len() as u32);
        for op in h.iter() {
            match op {
                Op::Read { addr, value } => {
                    buf.put_u8(0);
                    buf.put_u32_le(addr.0);
                    buf.put_u64_le(value.0);
                }
                Op::Write { addr, value } => {
                    buf.put_u8(1);
                    buf.put_u32_le(addr.0);
                    buf.put_u64_le(value.0);
                }
                Op::Rmw { addr, read, write } => {
                    buf.put_u8(2);
                    buf.put_u32_le(addr.0);
                    buf.put_u64_le(read.0);
                    buf.put_u64_le(write.0);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize a trace from the binary format.
pub fn decode_trace(mut input: &[u8]) -> Result<Trace, DecodeError> {
    fn need(input: &[u8], n: usize) -> Result<(), DecodeError> {
        if input.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    need(input, 8)?;
    let magic = input.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = input.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let procs = input.get_u16_le() as usize;

    let mut trace = Trace::new();
    need(input, 4)?;
    let n_init = input.get_u32_le();
    for _ in 0..n_init {
        need(input, 12)?;
        let addr = Addr(input.get_u32_le());
        let value = Value(input.get_u64_le());
        trace.set_initial(addr, value);
    }
    need(input, 4)?;
    let n_final = input.get_u32_le();
    for _ in 0..n_final {
        need(input, 12)?;
        let addr = Addr(input.get_u32_le());
        let value = Value(input.get_u64_le());
        trace.set_final(addr, value);
    }
    for _ in 0..procs {
        need(input, 4)?;
        let n_ops = input.get_u32_le();
        let mut h = ProcessHistory::new();
        for _ in 0..n_ops {
            need(input, 1)?;
            let tag = input.get_u8();
            let op = match tag {
                0 => {
                    need(input, 12)?;
                    Op::Read { addr: Addr(input.get_u32_le()), value: Value(input.get_u64_le()) }
                }
                1 => {
                    need(input, 12)?;
                    Op::Write { addr: Addr(input.get_u32_le()), value: Value(input.get_u64_le()) }
                }
                2 => {
                    need(input, 20)?;
                    Op::Rmw {
                        addr: Addr(input.get_u32_le()),
                        read: Value(input.get_u64_le()),
                        write: Value(input.get_u64_le()),
                    }
                }
                t => return Err(DecodeError::BadOpTag(t)),
            };
            h.push(op);
        }
        trace.push_history(h);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_sc_trace, GenConfig};
    use crate::trace::TraceBuilder;

    #[test]
    fn round_trip_small() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::rmw(1u32, 0u64, 5u64)])
            .proc([Op::read(0u32, 1u64)])
            .initial(1u32, 3u64)
            .final_value(0u32, 1u64)
            .build();
        let bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn round_trip_generated() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 5,
            total_ops: 200,
            addrs: 4,
            rmw_fraction: 0.2,
            ..Default::default()
        });
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_trace(&[0u8; 16]), Err(DecodeError::BadMagic(0)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).initial(0u32, 2u64).build();
        let bytes = encode_trace(&t);
        for cut in 0..bytes.len() {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of length {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_bad_version() {
        let t = Trace::new();
        let mut bytes = encode_trace(&t).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(decode_trace(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn rejects_bad_op_tag() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        let mut bytes = encode_trace(&t).to_vec();
        // op tag is right after header(8) + n_init(4) + n_final(4) + n_ops(4)
        bytes[20] = 9;
        assert_eq!(decode_trace(&bytes), Err(DecodeError::BadOpTag(9)));
    }
}
