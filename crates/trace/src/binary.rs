//! Compact binary encoding of traces, for storing large captured executions
//! and for feeding them to the streaming verifier chunk by chunk.
//!
//! Built on the hand-rolled [`vermem_util::codec`] (fixed-width header,
//! LEB128 varint body) — no external serialization crates. Two framings
//! share the magic/header layout:
//!
//! **Version 2 — batch archival (proc-major):**
//!
//! ```text
//! magic   u32 LE = 0x564D_454D ("VMEM")
//! version u16 LE = 2
//! procs   u16 LE
//! n_init  uvarint   then n_init  × (addr uvarint, value uvarint)
//! n_final uvarint   then n_final × (addr uvarint, value uvarint)
//! per process: n_ops uvarint, then n_ops × op
//! op: tag u8 (0=R, 1=W, 2=RW), addr uvarint, value(s) uvarint [×2 for RW]
//! ```
//!
//! **Version 3 — open-ended event stream (temporal/commit order):**
//!
//! ```text
//! magic   u32 LE = 0x564D_454D, version u16 LE = 3, procs u16 LE
//! n_init / n_final sections as in v2
//! then events until end of input: proc uvarint, op (as in v2)
//! ```
//!
//! v3 carries no operation counts: a stream ends when its producer stops,
//! which is what a live capture feed looks like. Events are interleaved
//! across processes in the order the memory system emitted them (writes at
//! commit time), and each process's own events appear in its program order,
//! so [`ChunkReader`] can assign every event its [`OpRef`] identity on the
//! fly.
//!
//! [`ChunkReader`] is the incremental decoder both framings share: feed it
//! arbitrary byte chunks (mmap windows, socket reads), drain complete
//! events with [`ChunkReader::next`], and get a typed
//! [`DecodeError::NeedMoreBytes`] — never a partial op — when a record is
//! split across a chunk boundary. [`decode_trace`] is a thin whole-buffer
//! wrapper over it, so batch and streaming decode paths cannot drift.
//!
//! Varints make the common case (small addresses and values) 1 byte per
//! field, so a typical captured operation costs 3 bytes instead of the 13
//! a fixed-width layout needs. Decoding is fully bounds-checked and never
//! allocates ahead of verified input: a header claiming 2³² operations on
//! a 20-byte file fails with [`DecodeError::Truncated`] immediately rather
//! than reserving gigabytes.
//!
//! Encoding is deterministic: initial/final values live in ordered maps and
//! histories are encoded in process order, so equal traces always produce
//! byte-identical buffers (asserted by the round-trip tests).

use std::collections::BTreeMap;

use crate::history::ProcessHistory;
use crate::op::{Addr, Op, OpRef, ProcId, Value};
use crate::trace::Trace;
use vermem_util::codec::{put_u16_le, put_u32_le, put_u8, put_uvarint, CodecError, Reader};

const MAGIC: u32 = 0x564D_454D;
const VERSION: u16 = 2;

/// Version tag of the open-ended interleaved event-stream framing.
pub const STREAM_VERSION: u16 = 3;

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the expected magic number.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the structure was complete.
    Truncated,
    /// The buffered input ends mid-record, but the stream itself may simply
    /// not be complete yet: feed more bytes and retry. Whole-buffer
    /// decoders (where no more bytes can come) map this to [`Truncated`].
    ///
    /// [`Truncated`]: DecodeError::Truncated
    NeedMoreBytes,
    /// A varint field was wider than 64 bits.
    BadVarint,
    /// Unknown operation tag byte.
    BadOpTag(u8),
    /// An event named a process outside the header's declared range.
    BadProc(u64),
    /// An address field exceeded the 32-bit address space.
    AddrOverflow(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::NeedMoreBytes => write!(f, "record split across chunk boundary"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadOpTag(t) => write!(f, "unknown op tag {t}"),
            DecodeError::BadProc(p) => write!(f, "process {p} outside declared range"),
            DecodeError::AddrOverflow(a) => write!(f, "address {a} exceeds 32 bits"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => DecodeError::Truncated,
            CodecError::VarintOverflow => DecodeError::BadVarint,
        }
    }
}

fn put_op(buf: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Read { addr, value } => {
            put_u8(buf, 0);
            put_uvarint(buf, u64::from(addr.0));
            put_uvarint(buf, value.0);
        }
        Op::Write { addr, value } => {
            put_u8(buf, 1);
            put_uvarint(buf, u64::from(addr.0));
            put_uvarint(buf, value.0);
        }
        Op::Rmw { addr, read, write } => {
            put_u8(buf, 2);
            put_uvarint(buf, u64::from(addr.0));
            put_uvarint(buf, read.0);
            put_uvarint(buf, write.0);
        }
    }
}

/// Serialize a trace to the binary format (version 2, proc-major).
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.num_ops() * 4);
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, VERSION);
    put_u16_le(&mut buf, trace.num_procs() as u16);
    for map in [trace.initial_values(), trace.final_values()] {
        put_uvarint(&mut buf, map.len() as u64);
        for (&addr, &value) in map {
            put_uvarint(&mut buf, u64::from(addr.0));
            put_uvarint(&mut buf, value.0);
        }
    }
    for h in trace.histories() {
        put_uvarint(&mut buf, h.len() as u64);
        for op in h.iter() {
            put_op(&mut buf, &op);
        }
    }
    buf
}

/// Serialize the header of a version-3 event stream (magic, process count,
/// initial/final value sections). Follow with [`encode_stream_op`] per event.
pub fn encode_stream_header(
    procs: u16,
    initials: &BTreeMap<Addr, Value>,
    finals: &BTreeMap<Addr, Value>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + 4 * (initials.len() + finals.len()));
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, STREAM_VERSION);
    put_u16_le(&mut buf, procs);
    for map in [initials, finals] {
        put_uvarint(&mut buf, map.len() as u64);
        for (&addr, &value) in map {
            put_uvarint(&mut buf, u64::from(addr.0));
            put_uvarint(&mut buf, value.0);
        }
    }
    buf
}

/// Append one interleaved event record to a version-3 stream.
pub fn encode_stream_op(buf: &mut Vec<u8>, proc: ProcId, op: &Op) {
    put_uvarint(buf, u64::from(proc.0));
    put_op(buf, op);
}

/// Serialize a whole event sequence as a version-3 stream. Each process's
/// events must appear in its program order (the interleaving across
/// processes is free — typically temporal/commit order).
pub fn encode_event_stream(
    procs: u16,
    initials: &BTreeMap<Addr, Value>,
    finals: &BTreeMap<Addr, Value>,
    events: &[(ProcId, Op)],
) -> Vec<u8> {
    let mut buf = encode_stream_header(procs, initials, finals);
    buf.reserve(events.len() * 4);
    for (proc, op) in events {
        encode_stream_op(&mut buf, *proc, op);
    }
    buf
}

/// Map a codec error for the incremental path: an exhausted buffer is
/// "feed me more", not necessarily corruption.
fn need(e: CodecError) -> DecodeError {
    match e {
        CodecError::Truncated => DecodeError::NeedMoreBytes,
        CodecError::VarintOverflow => DecodeError::BadVarint,
    }
}

fn get_addr(r: &mut Reader<'_>) -> Result<Addr, DecodeError> {
    let raw = r.get_uvarint().map_err(need)?;
    let a = u32::try_from(raw).map_err(|_| DecodeError::AddrOverflow(raw))?;
    Ok(Addr(a))
}

/// Decode one v3 interleaved event record (proc varint + op). Shared by
/// [`ChunkReader::next`] and [`ChunkReader::next_batch`] so the two decode
/// paths cannot drift.
#[inline]
fn get_event(r: &mut Reader<'_>, procs: u16) -> Result<(u16, Op), DecodeError> {
    let raw_proc = r.get_uvarint().map_err(need)?;
    let proc = u16::try_from(raw_proc)
        .ok()
        .filter(|p| *p < procs)
        .ok_or(DecodeError::BadProc(raw_proc))?;
    let op = get_op(r)?;
    Ok((proc, op))
}

fn get_op(r: &mut Reader<'_>) -> Result<Op, DecodeError> {
    let tag = r.get_u8().map_err(need)?;
    match tag {
        0 => Ok(Op::Read {
            addr: get_addr(r)?,
            value: Value(r.get_uvarint().map_err(need)?),
        }),
        1 => Ok(Op::Write {
            addr: get_addr(r)?,
            value: Value(r.get_uvarint().map_err(need)?),
        }),
        2 => Ok(Op::Rmw {
            addr: get_addr(r)?,
            read: Value(r.get_uvarint().map_err(need)?),
            write: Value(r.get_uvarint().map_err(need)?),
        }),
        t => Err(DecodeError::BadOpTag(t)),
    }
}

/// One decoded item from a [`ChunkReader`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// The header parsed: format version and declared process count.
    Begin {
        /// Format version (2 = proc-major batch, 3 = interleaved events).
        version: u16,
        /// Number of processes the stream may reference.
        procs: u16,
    },
    /// One initial-value declaration.
    Init {
        /// Declared location.
        addr: Addr,
        /// Its value before the execution.
        value: Value,
    },
    /// One final-value declaration.
    Final {
        /// Declared location.
        addr: Addr,
        /// Its value after the execution.
        value: Value,
    },
    /// One operation, with its program-order identity and encoded size.
    Op {
        /// Identity of the operation (process + program-order index),
        /// assigned incrementally and identical to what
        /// [`crate::index::AddrIndex`] assigns on the batch path.
        op_ref: OpRef,
        /// The operation itself.
        op: Op,
        /// Encoded size of this record in bytes (for retirement accounting).
        bytes: u32,
    },
}

#[derive(Clone, Copy, Debug)]
enum ChunkState {
    Header,
    InitCount,
    Init { left: u64 },
    FinalCount,
    Finals { left: u64 },
    ProcCount { proc: u16 },
    Ops { proc: u16, left: u64 },
    Events,
    Done,
}

/// Resumable incremental decoder for both binary framings (v2 batch files
/// and v3 event streams).
///
/// Feed byte chunks of any size with [`feed`], then drain complete events
/// with [`next`]. A record split across a chunk boundary is never partially
/// consumed: [`next`] returns [`DecodeError::NeedMoreBytes`] and re-parses
/// the record from its first byte once more input arrives. `Ok(None)` means
/// the stream is structurally complete (only v2 declares its own end; a v3
/// stream ends when the producer stops feeding — call [`finish`] to check
/// it ended on a record boundary).
///
/// [`feed`]: ChunkReader::feed
/// [`next`]: ChunkReader::next
/// [`finish`]: ChunkReader::finish
#[derive(Debug)]
pub struct ChunkReader {
    buf: Vec<u8>,
    pos: usize,
    state: ChunkState,
    version: u16,
    procs: u16,
    op_counts: Vec<u32>,
}

impl Default for ChunkReader {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkReader {
    /// Create a reader expecting a stream from its first byte.
    pub fn new() -> Self {
        ChunkReader {
            buf: Vec::new(),
            pos: 0,
            state: ChunkState::Header,
            version: 0,
            procs: 0,
            op_counts: Vec::new(),
        }
    }

    /// Append the next chunk of input.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact the consumed prefix before growing, so a long stream
        // holds O(chunk) bytes rather than the whole history.
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Format version, once the header has been decoded.
    pub fn version(&self) -> Option<u16> {
        (self.version != 0).then_some(self.version)
    }

    /// Declared process count, once the header has been decoded.
    pub fn procs(&self) -> Option<u16> {
        (self.version != 0).then_some(self.procs)
    }

    /// Bytes fed but not yet consumed by complete records.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next event, if a complete record is buffered.
    ///
    /// `Ok(None)` = the stream declared its own end (v2 only).
    /// [`DecodeError::NeedMoreBytes`] = the buffer ends mid-record (or, for
    /// v3, possibly exactly on a record boundary — [`ChunkReader::finish`]
    /// distinguishes a clean end from a split record).
    // Not an `Iterator`: `NeedMoreBytes` is a resumable condition, not `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<StreamEvent>, DecodeError> {
        loop {
            let tail = &self.buf[self.pos..];
            let mut r = Reader::new(tail);
            match self.state {
                ChunkState::Header => {
                    let magic = r.get_u32_le().map_err(need)?;
                    if magic != MAGIC {
                        return Err(DecodeError::BadMagic(magic));
                    }
                    let version = r.get_u16_le().map_err(need)?;
                    if version != VERSION && version != STREAM_VERSION {
                        return Err(DecodeError::BadVersion(version));
                    }
                    let procs = r.get_u16_le().map_err(need)?;
                    self.pos += tail.len() - r.remaining();
                    self.version = version;
                    self.procs = procs;
                    self.op_counts = vec![0; procs as usize];
                    self.state = ChunkState::InitCount;
                    return Ok(Some(StreamEvent::Begin { version, procs }));
                }
                ChunkState::InitCount => {
                    let left = r.get_uvarint().map_err(need)?;
                    self.pos += tail.len() - r.remaining();
                    self.state = ChunkState::Init { left };
                }
                ChunkState::Init { left } => {
                    if left == 0 {
                        self.state = ChunkState::FinalCount;
                        continue;
                    }
                    let addr = get_addr(&mut r)?;
                    let value = Value(r.get_uvarint().map_err(need)?);
                    self.pos += tail.len() - r.remaining();
                    self.state = ChunkState::Init { left: left - 1 };
                    return Ok(Some(StreamEvent::Init { addr, value }));
                }
                ChunkState::FinalCount => {
                    let left = r.get_uvarint().map_err(need)?;
                    self.pos += tail.len() - r.remaining();
                    self.state = ChunkState::Finals { left };
                }
                ChunkState::Finals { left } => {
                    if left == 0 {
                        self.state = if self.version == STREAM_VERSION {
                            ChunkState::Events
                        } else if self.procs == 0 {
                            ChunkState::Done
                        } else {
                            ChunkState::ProcCount { proc: 0 }
                        };
                        continue;
                    }
                    let addr = get_addr(&mut r)?;
                    let value = Value(r.get_uvarint().map_err(need)?);
                    self.pos += tail.len() - r.remaining();
                    self.state = ChunkState::Finals { left: left - 1 };
                    return Ok(Some(StreamEvent::Final { addr, value }));
                }
                ChunkState::ProcCount { proc } => {
                    let left = r.get_uvarint().map_err(need)?;
                    self.pos += tail.len() - r.remaining();
                    self.state = ChunkState::Ops { proc, left };
                }
                ChunkState::Ops { proc, left } => {
                    if left == 0 {
                        let next = proc + 1;
                        self.state = if usize::from(next) >= usize::from(self.procs) {
                            ChunkState::Done
                        } else {
                            ChunkState::ProcCount { proc: next }
                        };
                        continue;
                    }
                    let op = get_op(&mut r)?;
                    let consumed = tail.len() - r.remaining();
                    self.pos += consumed;
                    self.state = ChunkState::Ops {
                        proc,
                        left: left - 1,
                    };
                    let idx = self.op_counts[usize::from(proc)];
                    self.op_counts[usize::from(proc)] += 1;
                    return Ok(Some(StreamEvent::Op {
                        op_ref: OpRef::new(proc, idx),
                        op,
                        bytes: consumed as u32,
                    }));
                }
                ChunkState::Events => {
                    if r.remaining() == 0 {
                        return Err(DecodeError::NeedMoreBytes);
                    }
                    let (proc, op) = get_event(&mut r, self.procs)?;
                    let consumed = tail.len() - r.remaining();
                    self.pos += consumed;
                    let idx = self.op_counts[usize::from(proc)];
                    self.op_counts[usize::from(proc)] += 1;
                    return Ok(Some(StreamEvent::Op {
                        op_ref: OpRef::new(proc, idx),
                        op,
                        bytes: consumed as u32,
                    }));
                }
                ChunkState::Done => return Ok(None),
            }
        }
    }

    /// Decode up to `max` complete events into `out`, returning how many
    /// were appended.
    ///
    /// Equivalent to calling [`next`](ChunkReader::next) in a loop — the
    /// chunking property tests pin the two paths event-for-event — but the
    /// v3 interleaved-event hot path decodes consecutive records through
    /// one borrow of the buffer instead of re-entering the state machine
    /// per event, which is what makes block ingest cheap.
    ///
    /// `Ok(n)` with `n < max` means no further complete event is currently
    /// available: the stream is structurally complete, or the buffer ends
    /// mid-record (feed more bytes and call again) — the same conditions
    /// `next` reports as `Ok(None)` / [`DecodeError::NeedMoreBytes`],
    /// which this method never returns. Hard decode errors surface as
    /// `Err` with every event decoded before the bad record already in
    /// `out`, and would recur on a retry, exactly like `next`.
    ///
    /// The consumed front of the internal buffer is compacted here with
    /// the same amortized policy as [`feed`](ChunkReader::feed), so a
    /// caller that feeds one large buffer and drains it in batches still
    /// holds O(batch) bytes.
    pub fn next_batch(
        &mut self,
        out: &mut Vec<StreamEvent>,
        max: usize,
    ) -> Result<usize, DecodeError> {
        let mut decoded = 0usize;
        while decoded < max {
            if let ChunkState::Events = self.state {
                // Hot path: drain consecutive v3 event records through one
                // Reader. `pos` only ever advances past complete records.
                let procs = self.procs;
                let tail = &self.buf[self.pos..];
                let mut r = Reader::new(tail);
                let mut consumed_total = 0usize;
                let mut failed = None;
                while decoded < max {
                    let before = r.remaining();
                    if before == 0 {
                        break;
                    }
                    match get_event(&mut r, procs) {
                        Ok((proc, op)) => {
                            let consumed = before - r.remaining();
                            consumed_total += consumed;
                            let idx = self.op_counts[usize::from(proc)];
                            self.op_counts[usize::from(proc)] += 1;
                            out.push(StreamEvent::Op {
                                op_ref: OpRef::new(proc, idx),
                                op,
                                bytes: consumed as u32,
                            });
                            decoded += 1;
                        }
                        Err(DecodeError::NeedMoreBytes) => break,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                self.pos += consumed_total;
                self.compact();
                return match failed {
                    Some(e) => Err(e),
                    None => Ok(decoded),
                };
            }
            // Cold path: header / init / final / v2 sections go through the
            // single-event state machine.
            match self.next() {
                Ok(Some(ev)) => {
                    out.push(ev);
                    decoded += 1;
                }
                Ok(None) => break,
                Err(DecodeError::NeedMoreBytes) => break,
                Err(e) => return Err(e),
            }
        }
        self.compact();
        Ok(decoded)
    }

    /// Amortized front-compaction (the same policy [`feed`](ChunkReader::feed)
    /// applies before growing).
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Declare end of input: `Ok(())` iff the stream ended on a complete
    /// structure (v2: all declared histories consumed; v3: a record
    /// boundary). Trailing bytes after a complete v2 structure are ignored,
    /// matching [`decode_trace`].
    pub fn finish(&self) -> Result<(), DecodeError> {
        let clean = match self.state {
            ChunkState::Done => true,
            ChunkState::Events => self.pos >= self.buf.len(),
            _ => false,
        };
        if clean {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

/// True if `bytes` starts with the binary-trace magic number — the sniff
/// CLI loaders use to pick between [`decode_trace`] (which itself accepts
/// both the v2 batch and v3 event-stream framings) and the text parser.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC.to_le_bytes()
}

/// Deserialize a trace from a complete binary buffer (either framing).
///
/// Implemented over [`ChunkReader`] so the batch and streaming decode paths
/// are one code path; a buffer that ends mid-record fails with
/// [`DecodeError::Truncated`] (no more bytes can come).
pub fn decode_trace(input: &[u8]) -> Result<Trace, DecodeError> {
    let mut cr = ChunkReader::new();
    cr.feed(input);
    let mut trace = Trace::new();
    let mut hists: Vec<ProcessHistory> = Vec::new();
    loop {
        match cr.next() {
            Ok(Some(StreamEvent::Begin { procs, .. })) => {
                hists = (0..procs).map(|_| ProcessHistory::new()).collect();
            }
            Ok(Some(StreamEvent::Init { addr, value })) => trace.set_initial(addr, value),
            Ok(Some(StreamEvent::Final { addr, value })) => trace.set_final(addr, value),
            Ok(Some(StreamEvent::Op { op_ref, op, .. })) => {
                hists[usize::from(op_ref.proc.0)].push(op);
            }
            Ok(None) => break,
            Err(DecodeError::NeedMoreBytes) => {
                cr.finish()?;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    for h in hists {
        trace.push_history(h);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_sc_trace, GenConfig};
    use crate::trace::TraceBuilder;
    use vermem_util::prop::PropConfig;
    use vermem_util::prop_check;

    #[test]
    fn round_trip_small() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::rmw(1u32, 0u64, 5u64)])
            .proc([Op::read(0u32, 1u64)])
            .initial(1u32, 3u64)
            .final_value(0u32, 1u64)
            .build();
        let bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn round_trip_generated() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 5,
            total_ops: 200,
            addrs: 4,
            rmw_fraction: 0.2,
            ..Default::default()
        });
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn round_trip_extreme_field_values() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(u32::MAX, u64::MAX),
                Op::rmw(u32::MAX, u64::MAX, 0u64),
            ])
            .initial(u32::MAX, u64::MAX)
            .build();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 120,
            addrs: 3,
            seed: 99,
            ..Default::default()
        });
        assert_eq!(encode_trace(&t), encode_trace(&t.clone()));
    }

    #[test]
    fn same_seed_generates_byte_identical_encodings() {
        // The end-to-end reproducibility guarantee: two *independent*
        // generator runs from the same seed produce byte-identical encoded
        // traces (PRNG stream, generator logic, and encoding are all
        // deterministic). This is the test DESIGN.md's seed-stability
        // policy points at.
        let cfg = GenConfig {
            procs: 4,
            total_ops: 150,
            addrs: 3,
            seed: 2024,
            ..Default::default()
        };
        let (a, _) = gen_sc_trace(&cfg);
        let (b, _) = gen_sc_trace(&cfg);
        assert_eq!(encode_trace(&a), encode_trace(&b));
        // And a different seed changes the bytes (sanity check that the
        // previous assertion is not vacuous).
        let (c, _) = gen_sc_trace(&GenConfig { seed: 2025, ..cfg });
        assert_ne!(encode_trace(&a), encode_trace(&c));
    }

    #[test]
    fn round_trip_empty_trace() {
        let t = Trace::new();
        let bytes = encode_trace(&t);
        assert_eq!(bytes.len(), 10); // header(8) + n_init(1) + n_final(1)
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn small_ops_cost_three_bytes() {
        // One process, one op with 1-byte addr and value: header(8) +
        // n_init(1) + n_final(1) + n_ops(1) + op(3).
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        assert_eq!(encode_trace(&t).len(), 14);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_trace(&[0u8; 16]), Err(DecodeError::BadMagic(0)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .initial(0u32, 2u64)
            .build();
        let bytes = encode_trace(&t);
        for cut in 0..bytes.len() {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of length {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_huge_claimed_op_count_without_allocating() {
        // A header that claims u32::MAX initial values on a tiny buffer must
        // fail fast with Truncated (no upfront allocation to DoS with).
        let mut bytes = Vec::new();
        vermem_util::codec::put_u32_le(&mut bytes, MAGIC);
        vermem_util::codec::put_u16_le(&mut bytes, VERSION);
        vermem_util::codec::put_u16_le(&mut bytes, 1); // one process
        vermem_util::codec::put_uvarint(&mut bytes, u64::from(u32::MAX)); // n_init lie
        assert_eq!(decode_trace(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_bad_version() {
        let t = Trace::new();
        let mut bytes = encode_trace(&t);
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_trace(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_bad_op_tag() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        let mut bytes = encode_trace(&t);
        // Single op W(0,1): its tag is the third-from-last byte.
        let tag_at = bytes.len() - 3;
        bytes[tag_at] = 9;
        assert_eq!(decode_trace(&bytes), Err(DecodeError::BadOpTag(9)));
    }

    #[test]
    fn rejects_64bit_address_field() {
        let mut bytes = Vec::new();
        vermem_util::codec::put_u32_le(&mut bytes, MAGIC);
        vermem_util::codec::put_u16_le(&mut bytes, VERSION);
        vermem_util::codec::put_u16_le(&mut bytes, 0);
        vermem_util::codec::put_uvarint(&mut bytes, 1); // one initial entry
        vermem_util::codec::put_uvarint(&mut bytes, u64::from(u32::MAX) + 1); // addr too wide
        vermem_util::codec::put_uvarint(&mut bytes, 0);
        vermem_util::codec::put_uvarint(&mut bytes, 0); // n_final
        assert_eq!(
            decode_trace(&bytes),
            Err(DecodeError::AddrOverflow(u64::from(u32::MAX) + 1))
        );
    }

    // ---- ChunkReader: incremental decode ----

    /// Drain every currently-decodable event; NeedMoreBytes is the normal
    /// "buffer exhausted" signal between chunks, anything else is a bug.
    fn drain(cr: &mut ChunkReader, sink: &mut Vec<StreamEvent>) -> bool {
        loop {
            match cr.next() {
                Ok(Some(ev)) => sink.push(ev),
                Ok(None) => return true,
                Err(DecodeError::NeedMoreBytes) => return false,
                Err(e) => panic!("unexpected decode error {e}"),
            }
        }
    }

    /// Rebuild a trace from drained events (both framings).
    fn assemble(events: &[StreamEvent]) -> Trace {
        let mut trace = Trace::new();
        let mut hists: Vec<ProcessHistory> = Vec::new();
        for ev in events {
            match *ev {
                StreamEvent::Begin { procs, .. } => {
                    hists = (0..procs).map(|_| ProcessHistory::new()).collect();
                }
                StreamEvent::Init { addr, value } => trace.set_initial(addr, value),
                StreamEvent::Final { addr, value } => trace.set_final(addr, value),
                StreamEvent::Op { op_ref, op, .. } => hists[usize::from(op_ref.proc.0)].push(op),
            }
        }
        for h in hists {
            trace.push_history(h);
        }
        trace
    }

    #[test]
    fn chunked_reassembly_matches_batch_decode_at_every_chunk_size() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 160,
            addrs: 5,
            rmw_fraction: 0.25,
            seed: 7,
            ..Default::default()
        });
        let bytes = encode_trace(&t);
        for chunk in [1usize, 2, 3, 5, 8, 13, 64, 1024] {
            let mut cr = ChunkReader::new();
            let mut events = Vec::new();
            let mut done = false;
            for piece in bytes.chunks(chunk) {
                cr.feed(piece);
                done = drain(&mut cr, &mut events);
            }
            assert!(done, "chunk size {chunk}: v2 stream must self-terminate");
            cr.finish().unwrap();
            assert_eq!(assemble(&events), t, "chunk size {chunk}");
        }
    }

    #[test]
    fn every_strict_prefix_asks_for_more_bytes() {
        // Satellite: partial input is a typed NeedMoreBytes, never a
        // half-consumed record or a bogus structural error.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::rmw(2u32, 0u64, 9u64)])
            .proc([Op::read(0u32, 1u64)])
            .initial(0u32, 2u64)
            .final_value(2u32, 9u64)
            .build();
        let bytes = encode_trace(&t);
        for cut in 0..bytes.len() {
            let mut cr = ChunkReader::new();
            cr.feed(&bytes[..cut]);
            let mut events = Vec::new();
            let done = drain(&mut cr, &mut events);
            assert!(!done, "prefix {cut} must not look complete");
            assert_eq!(cr.finish(), Err(DecodeError::Truncated), "prefix {cut}");
            // Feeding the rest must pick up exactly where we stopped.
            cr.feed(&bytes[cut..]);
            assert!(drain(&mut cr, &mut events), "resume at {cut}");
            cr.finish().unwrap();
            assert_eq!(assemble(&events), t, "resume at {cut}");
        }
    }

    #[test]
    fn zero_and_one_byte_chunks_interleaved_with_rotation_ticks() {
        // Satellite: empty feeds are legal no-ops, 1-byte feeds reassemble
        // records correctly, and a live-telemetry TimeSeries rotating
        // mid-ingest still accounts for every decoded event — the exact
        // shape of `vermem serve --obs-addr` ingesting a trickling stream.
        use vermem_util::obs::timeseries::TimeSeries;
        let mut src = Vec::new();
        for i in 0..40u64 {
            src.push((ProcId((i % 3) as u16), Op::write((i % 4) as u32, i + 1)));
        }
        let bytes = encode_event_stream(3, &BTreeMap::new(), &BTreeMap::new(), &src);

        let mut oneshot = Vec::new();
        let mut cr = ChunkReader::new();
        cr.feed(&bytes);
        drain(&mut cr, &mut oneshot);
        cr.finish().unwrap();

        let series = TimeSeries::new(4, 0);
        let mut clock = 0u64;
        let mut cr = ChunkReader::new();
        let mut events = Vec::new();
        for (i, byte) in bytes.iter().enumerate() {
            cr.feed(&[]);
            cr.feed(std::slice::from_ref(byte));
            let before = events.len();
            drain(&mut cr, &mut events);
            for _ in before..events.len() {
                series.record(1);
            }
            if i % 16 == 0 {
                clock += 1_000;
                series.rotate(clock);
            }
        }
        cr.feed(&[]);
        cr.finish().unwrap();

        assert_eq!(events.len(), oneshot.len());
        assert_eq!(assemble(&events), assemble(&oneshot));
        assert_eq!(series.total().count(), events.len() as u64);
        assert!(series.windowed().count() <= series.total().count());
    }

    #[test]
    fn looks_binary_sniffs_both_framings_and_rejects_text() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        assert!(looks_binary(&encode_trace(&t)));
        let v3 = encode_event_stream(1, &BTreeMap::new(), &BTreeMap::new(), &[]);
        assert!(looks_binary(&v3));
        assert!(!looks_binary(b"procs 2\n"));
        assert!(!looks_binary(b""));
        assert!(!looks_binary(&encode_trace(&t)[..3]));
    }

    #[test]
    fn random_chunkings_reassemble_identically() {
        prop_check!(
            PropConfig::with_cases(48),
            |rng, size| {
                let (t, _) = gen_sc_trace(&GenConfig {
                    procs: 1 + (size % 5),
                    total_ops: 4 * size.max(1),
                    addrs: 1 + (size % 4),
                    rmw_fraction: 0.2,
                    seed: rng.gen_range(0..u64::MAX),
                    ..Default::default()
                });
                let bytes = encode_trace(&t);
                // Random cut points, including empty chunks.
                let mut cuts: Vec<usize> = (0..8).map(|_| rng.gen_range(0..=bytes.len())).collect();
                cuts.sort_unstable();
                (t, bytes, cuts)
            },
            |(t, bytes, cuts): &(Trace, Vec<u8>, Vec<usize>)| {
                let mut cr = ChunkReader::new();
                let mut events = Vec::new();
                let mut prev = 0usize;
                for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
                    cr.feed(&bytes[prev..cut]);
                    drain(&mut cr, &mut events);
                    prev = cut;
                }
                cr.finish().map_err(|e| format!("finish: {e}"))?;
                vermem_util::prop_assert_eq!(&assemble(&events), t);
                Ok(())
            },
        );
    }

    #[test]
    fn event_stream_round_trip_with_op_identities() {
        // Interleave two processes' program orders; the reader must hand
        // back the same events with correct per-process OpRef indices.
        let events = vec![
            (ProcId(0), Op::write(0u32, 1u64)),
            (ProcId(1), Op::read(0u32, 1u64)),
            (ProcId(0), Op::rmw(1u32, 0u64, 5u64)),
            (ProcId(1), Op::read(1u32, 5u64)),
            (ProcId(0), Op::write(0u32, 2u64)),
        ];
        let mut initials = BTreeMap::new();
        initials.insert(Addr(1), Value(0));
        let mut finals = BTreeMap::new();
        finals.insert(Addr(0), Value(2));
        let bytes = encode_event_stream(2, &initials, &finals, &events);

        for chunk in [1usize, 3, 7, 4096] {
            let mut cr = ChunkReader::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk) {
                cr.feed(piece);
                assert!(!drain(&mut cr, &mut got), "v3 streams never self-end");
            }
            cr.finish().unwrap();
            assert_eq!(cr.version(), Some(STREAM_VERSION));
            let ops: Vec<(OpRef, Op)> = got
                .iter()
                .filter_map(|ev| match *ev {
                    StreamEvent::Op { op_ref, op, .. } => Some((op_ref, op)),
                    _ => None,
                })
                .collect();
            let want: Vec<(OpRef, Op)> = vec![
                (OpRef::new(0u16, 0), events[0].1),
                (OpRef::new(1u16, 0), events[1].1),
                (OpRef::new(0u16, 1), events[2].1),
                (OpRef::new(1u16, 1), events[3].1),
                (OpRef::new(0u16, 2), events[4].1),
            ];
            assert_eq!(ops, want, "chunk {chunk}");
            // decode_trace understands the stream framing too and rebuilds
            // per-process program order from the interleaving.
            let t = decode_trace(&bytes).unwrap();
            assert_eq!(t.num_procs(), 2);
            assert_eq!(t.histories()[0].len(), 3);
            assert_eq!(t.histories()[1].len(), 2);
            assert_eq!(assemble(&got), t);
        }
    }

    #[test]
    fn event_stream_rejects_out_of_range_process() {
        let bytes = {
            let mut b = encode_stream_header(1, &BTreeMap::new(), &BTreeMap::new());
            encode_stream_op(&mut b, ProcId(5), &Op::w(1u64));
            b
        };
        let mut cr = ChunkReader::new();
        cr.feed(&bytes);
        assert_eq!(
            cr.next(),
            Ok(Some(StreamEvent::Begin {
                version: 3,
                procs: 1
            }))
        );
        assert_eq!(cr.next(), Err(DecodeError::BadProc(5)));
    }

    #[test]
    fn split_record_is_never_partially_consumed() {
        // Cut inside the RMW record's value fields: the reader must hold
        // the whole record until it is complete, then emit it once.
        let mut bytes = encode_stream_header(1, &BTreeMap::new(), &BTreeMap::new());
        encode_stream_op(&mut bytes, ProcId(0), &Op::rmw(300u32, 77777u64, 88888u64));
        let cut = bytes.len() - 2;
        let mut cr = ChunkReader::new();
        cr.feed(&bytes[..cut]);
        let mut events = Vec::new();
        assert!(!drain(&mut cr, &mut events));
        assert_eq!(events.len(), 1, "only Begin so far");
        let buffered = cr.buffered();
        cr.feed(&bytes[cut..]);
        assert!(cr.buffered() > buffered);
        assert!(!drain(&mut cr, &mut events));
        assert_eq!(
            events.last(),
            Some(&StreamEvent::Op {
                op_ref: OpRef::new(0u16, 0),
                op: Op::rmw(300u32, 77777u64, 88888u64),
                bytes: (bytes.len() - 10) as u32,
            })
        );
        cr.finish().unwrap();
    }

    // ---- ChunkReader::next_batch: block decode ----

    /// Drain with `next_batch` at a fixed batch size; mirrors `drain`.
    fn drain_batched(cr: &mut ChunkReader, sink: &mut Vec<StreamEvent>, max: usize) {
        loop {
            match cr.next_batch(sink, max) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) => panic!("unexpected decode error {e}"),
            }
        }
    }

    #[test]
    fn next_batch_matches_next_event_for_event_both_framings() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 180,
            addrs: 5,
            rmw_fraction: 0.25,
            seed: 11,
            ..Default::default()
        });
        let v3 = {
            let mut events = Vec::new();
            for (p, h) in t.histories().iter().enumerate() {
                for op in h.iter() {
                    events.push((ProcId(p as u16), op));
                }
            }
            encode_event_stream(
                t.num_procs() as u16,
                t.initial_values(),
                t.final_values(),
                &events,
            )
        };
        for bytes in [encode_trace(&t), v3] {
            let mut base = Vec::new();
            let mut cr = ChunkReader::new();
            cr.feed(&bytes);
            drain(&mut cr, &mut base);
            for (chunk, max) in [(1usize, 1usize), (3, 7), (17, 64), (4096, 1024)] {
                let mut cr = ChunkReader::new();
                let mut got = Vec::new();
                for piece in bytes.chunks(chunk) {
                    cr.feed(piece);
                    drain_batched(&mut cr, &mut got, max);
                }
                cr.finish().unwrap();
                assert_eq!(got, base, "chunk {chunk} max {max}");
            }
        }
    }

    #[test]
    fn next_batch_respects_max_and_resumes() {
        let mut src = Vec::new();
        for i in 0..10u64 {
            src.push((ProcId(0), Op::write(0u32, i + 1)));
        }
        let bytes = encode_event_stream(1, &BTreeMap::new(), &BTreeMap::new(), &src);
        let mut cr = ChunkReader::new();
        cr.feed(&bytes);
        let mut out = Vec::new();
        assert_eq!(cr.next_batch(&mut out, 4).unwrap(), 4); // Begin + 3 ops
        assert_eq!(out.len(), 4);
        assert_eq!(cr.next_batch(&mut out, 5).unwrap(), 5);
        assert_eq!(cr.next_batch(&mut out, 100).unwrap(), 2);
        assert_eq!(cr.next_batch(&mut out, 100).unwrap(), 0, "stream drained");
        cr.finish().unwrap();
        let ops = out
            .iter()
            .filter(|e| matches!(e, StreamEvent::Op { .. }))
            .count();
        assert_eq!(ops, 10);
    }

    #[test]
    fn next_batch_surfaces_errors_after_good_prefix() {
        let mut bytes = encode_stream_header(1, &BTreeMap::new(), &BTreeMap::new());
        encode_stream_op(&mut bytes, ProcId(0), &Op::w(1u64));
        encode_stream_op(&mut bytes, ProcId(5), &Op::w(2u64)); // out of range
        let mut cr = ChunkReader::new();
        cr.feed(&bytes);
        let mut out = Vec::new();
        assert_eq!(cr.next_batch(&mut out, 100), Err(DecodeError::BadProc(5)));
        assert_eq!(out.len(), 2, "Begin and the good op precede the error");
        // The bad record is not consumed: a retry reports it again.
        assert_eq!(cr.next_batch(&mut out, 100), Err(DecodeError::BadProc(5)));
    }

    #[test]
    fn next_batch_long_stream_buffer_stays_bounded() {
        let header = encode_stream_header(1, &BTreeMap::new(), &BTreeMap::new());
        let mut cr = ChunkReader::new();
        cr.feed(&header);
        let mut events = Vec::new();
        drain_batched(&mut cr, &mut events, 64);
        let mut record = Vec::new();
        for i in 0..64u64 {
            encode_stream_op(&mut record, ProcId(0), &Op::w(i + 1));
        }
        for _ in 0..10_000 {
            cr.feed(&record);
            events.clear();
            drain_batched(&mut cr, &mut events, 64);
            assert!(cr.buffered() < 16 * 1024, "reader buffer must stay bounded");
        }
    }

    #[test]
    fn random_chunkings_next_batch_reassembles_identically() {
        prop_check!(
            PropConfig::with_cases(48),
            |rng, size| {
                let (t, _) = gen_sc_trace(&GenConfig {
                    procs: 1 + (size % 5),
                    total_ops: 4 * size.max(1),
                    addrs: 1 + (size % 4),
                    rmw_fraction: 0.2,
                    seed: rng.gen_range(0..u64::MAX),
                    ..Default::default()
                });
                let bytes = encode_trace(&t);
                let mut cuts: Vec<usize> = (0..8).map(|_| rng.gen_range(0..=bytes.len())).collect();
                cuts.sort_unstable();
                let max = 1 + rng.gen_range(0..64usize);
                (t, bytes, cuts, max)
            },
            |(t, bytes, cuts, max): &(Trace, Vec<u8>, Vec<usize>, usize)| {
                let mut cr = ChunkReader::new();
                let mut events = Vec::new();
                let mut prev = 0usize;
                for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
                    cr.feed(&bytes[prev..cut]);
                    loop {
                        match cr.next_batch(&mut events, *max) {
                            Ok(0) => break,
                            Ok(_) => {}
                            Err(e) => return Err(format!("decode: {e}")),
                        }
                    }
                    prev = cut;
                }
                cr.finish().map_err(|e| format!("finish: {e}"))?;
                vermem_util::prop_assert_eq!(&assemble(&events), t);
                Ok(())
            },
        );
    }

    #[test]
    fn long_stream_buffer_stays_bounded() {
        // Compaction: feeding a long stream in chunks must not accumulate
        // the whole history in the reader's buffer.
        let header = encode_stream_header(1, &BTreeMap::new(), &BTreeMap::new());
        let mut cr = ChunkReader::new();
        cr.feed(&header);
        let mut events = Vec::new();
        drain(&mut cr, &mut events);
        let mut record = Vec::new();
        encode_stream_op(&mut record, ProcId(0), &Op::w(1u64));
        for _ in 0..100_000 {
            cr.feed(&record);
            drain(&mut cr, &mut events);
            assert!(cr.buffered() < 16 * 1024, "reader buffer must stay bounded");
        }
        assert_eq!(events.len(), 1 + 100_000);
    }
}
