//! Compact binary encoding of traces, for storing large captured executions.
//!
//! Built on the hand-rolled [`vermem_util::codec`] (fixed-width header,
//! LEB128 varint body) — no external serialization crates. Layout:
//!
//! ```text
//! magic   u32 LE = 0x564D_454D ("VMEM")
//! version u16 LE = 2
//! procs   u16 LE
//! n_init  uvarint   then n_init  × (addr uvarint, value uvarint)
//! n_final uvarint   then n_final × (addr uvarint, value uvarint)
//! per process: n_ops uvarint, then n_ops × op
//! op: tag u8 (0=R, 1=W, 2=RW), addr uvarint, value(s) uvarint [×2 for RW]
//! ```
//!
//! Varints make the common case (small addresses and values) 1 byte per
//! field, so a typical captured operation costs 3 bytes instead of the 13
//! a fixed-width layout needs. Decoding is fully bounds-checked and never
//! allocates ahead of verified input: a header claiming 2³² operations on
//! a 20-byte file fails with [`DecodeError::Truncated`] immediately rather
//! than reserving gigabytes.
//!
//! Encoding is deterministic: initial/final values live in ordered maps and
//! histories are encoded in process order, so equal traces always produce
//! byte-identical buffers (asserted by the round-trip tests).

use crate::history::ProcessHistory;
use crate::op::{Addr, Op, Value};
use crate::trace::Trace;
use vermem_util::codec::{put_u16_le, put_u32_le, put_u8, put_uvarint, CodecError, Reader};

const MAGIC: u32 = 0x564D_454D;
const VERSION: u16 = 2;

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the expected magic number.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended before the structure was complete.
    Truncated,
    /// A varint field was wider than 64 bits.
    BadVarint,
    /// Unknown operation tag byte.
    BadOpTag(u8),
    /// An address field exceeded the 32-bit address space.
    AddrOverflow(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadOpTag(t) => write!(f, "unknown op tag {t}"),
            DecodeError::AddrOverflow(a) => write!(f, "address {a} exceeds 32 bits"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => DecodeError::Truncated,
            CodecError::VarintOverflow => DecodeError::BadVarint,
        }
    }
}

/// Serialize a trace to the binary format.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.num_ops() * 4);
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, VERSION);
    put_u16_le(&mut buf, trace.num_procs() as u16);
    for map in [trace.initial_values(), trace.final_values()] {
        put_uvarint(&mut buf, map.len() as u64);
        for (&addr, &value) in map {
            put_uvarint(&mut buf, u64::from(addr.0));
            put_uvarint(&mut buf, value.0);
        }
    }
    for h in trace.histories() {
        put_uvarint(&mut buf, h.len() as u64);
        for op in h.iter() {
            match op {
                Op::Read { addr, value } => {
                    put_u8(&mut buf, 0);
                    put_uvarint(&mut buf, u64::from(addr.0));
                    put_uvarint(&mut buf, value.0);
                }
                Op::Write { addr, value } => {
                    put_u8(&mut buf, 1);
                    put_uvarint(&mut buf, u64::from(addr.0));
                    put_uvarint(&mut buf, value.0);
                }
                Op::Rmw { addr, read, write } => {
                    put_u8(&mut buf, 2);
                    put_uvarint(&mut buf, u64::from(addr.0));
                    put_uvarint(&mut buf, read.0);
                    put_uvarint(&mut buf, write.0);
                }
            }
        }
    }
    buf
}

fn get_addr(r: &mut Reader<'_>) -> Result<Addr, DecodeError> {
    let raw = r.get_uvarint()?;
    let a = u32::try_from(raw).map_err(|_| DecodeError::AddrOverflow(raw))?;
    Ok(Addr(a))
}

/// Deserialize a trace from the binary format.
pub fn decode_trace(input: &[u8]) -> Result<Trace, DecodeError> {
    let mut r = Reader::new(input);
    let magic = r.get_u32_le()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.get_u16_le()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let procs = r.get_u16_le()? as usize;

    let mut trace = Trace::new();
    let n_init = r.get_uvarint()?;
    for _ in 0..n_init {
        let addr = get_addr(&mut r)?;
        let value = Value(r.get_uvarint()?);
        trace.set_initial(addr, value);
    }
    let n_final = r.get_uvarint()?;
    for _ in 0..n_final {
        let addr = get_addr(&mut r)?;
        let value = Value(r.get_uvarint()?);
        trace.set_final(addr, value);
    }
    for _ in 0..procs {
        let n_ops = r.get_uvarint()?;
        let mut h = ProcessHistory::new();
        for _ in 0..n_ops {
            let tag = r.get_u8()?;
            let op = match tag {
                0 => Op::Read {
                    addr: get_addr(&mut r)?,
                    value: Value(r.get_uvarint()?),
                },
                1 => Op::Write {
                    addr: get_addr(&mut r)?,
                    value: Value(r.get_uvarint()?),
                },
                2 => Op::Rmw {
                    addr: get_addr(&mut r)?,
                    read: Value(r.get_uvarint()?),
                    write: Value(r.get_uvarint()?),
                },
                t => return Err(DecodeError::BadOpTag(t)),
            };
            h.push(op);
        }
        trace.push_history(h);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_sc_trace, GenConfig};
    use crate::trace::TraceBuilder;

    #[test]
    fn round_trip_small() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::rmw(1u32, 0u64, 5u64)])
            .proc([Op::read(0u32, 1u64)])
            .initial(1u32, 3u64)
            .final_value(0u32, 1u64)
            .build();
        let bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn round_trip_generated() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 5,
            total_ops: 200,
            addrs: 4,
            rmw_fraction: 0.2,
            ..Default::default()
        });
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn round_trip_extreme_field_values() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(u32::MAX, u64::MAX),
                Op::rmw(u32::MAX, u64::MAX, 0u64),
            ])
            .initial(u32::MAX, u64::MAX)
            .build();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 120,
            addrs: 3,
            seed: 99,
            ..Default::default()
        });
        assert_eq!(encode_trace(&t), encode_trace(&t.clone()));
    }

    #[test]
    fn same_seed_generates_byte_identical_encodings() {
        // The end-to-end reproducibility guarantee: two *independent*
        // generator runs from the same seed produce byte-identical encoded
        // traces (PRNG stream, generator logic, and encoding are all
        // deterministic). This is the test DESIGN.md's seed-stability
        // policy points at.
        let cfg = GenConfig {
            procs: 4,
            total_ops: 150,
            addrs: 3,
            seed: 2024,
            ..Default::default()
        };
        let (a, _) = gen_sc_trace(&cfg);
        let (b, _) = gen_sc_trace(&cfg);
        assert_eq!(encode_trace(&a), encode_trace(&b));
        // And a different seed changes the bytes (sanity check that the
        // previous assertion is not vacuous).
        let (c, _) = gen_sc_trace(&GenConfig { seed: 2025, ..cfg });
        assert_ne!(encode_trace(&a), encode_trace(&c));
    }

    #[test]
    fn round_trip_empty_trace() {
        let t = Trace::new();
        let bytes = encode_trace(&t);
        assert_eq!(bytes.len(), 10); // header(8) + n_init(1) + n_final(1)
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn small_ops_cost_three_bytes() {
        // One process, one op with 1-byte addr and value: header(8) +
        // n_init(1) + n_final(1) + n_ops(1) + op(3).
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        assert_eq!(encode_trace(&t).len(), 14);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_trace(&[0u8; 16]), Err(DecodeError::BadMagic(0)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .initial(0u32, 2u64)
            .build();
        let bytes = encode_trace(&t);
        for cut in 0..bytes.len() {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of length {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_huge_claimed_op_count_without_allocating() {
        // A header that claims u32::MAX initial values on a tiny buffer must
        // fail fast with Truncated (no upfront allocation to DoS with).
        let mut bytes = Vec::new();
        vermem_util::codec::put_u32_le(&mut bytes, MAGIC);
        vermem_util::codec::put_u16_le(&mut bytes, VERSION);
        vermem_util::codec::put_u16_le(&mut bytes, 1); // one process
        vermem_util::codec::put_uvarint(&mut bytes, u64::from(u32::MAX)); // n_init lie
        assert_eq!(decode_trace(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_bad_version() {
        let t = Trace::new();
        let mut bytes = encode_trace(&t);
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_trace(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_bad_op_tag() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        let mut bytes = encode_trace(&t);
        // Single op W(0,1): its tag is the third-from-last byte.
        let tag_at = bytes.len() - 3;
        bytes[tag_at] = 9;
        assert_eq!(decode_trace(&bytes), Err(DecodeError::BadOpTag(9)));
    }

    #[test]
    fn rejects_64bit_address_field() {
        let mut bytes = Vec::new();
        vermem_util::codec::put_u32_le(&mut bytes, MAGIC);
        vermem_util::codec::put_u16_le(&mut bytes, VERSION);
        vermem_util::codec::put_u16_le(&mut bytes, 0);
        vermem_util::codec::put_uvarint(&mut bytes, 1); // one initial entry
        vermem_util::codec::put_uvarint(&mut bytes, u64::from(u32::MAX) + 1); // addr too wide
        vermem_util::codec::put_uvarint(&mut bytes, 0);
        vermem_util::codec::put_uvarint(&mut bytes, 0); // n_final
        assert_eq!(
            decode_trace(&bytes),
            Err(DecodeError::AddrOverflow(u64::from(u32::MAX) + 1))
        );
    }
}
