//! Memory operations and their identifiers.
//!
//! The model follows §3 of the paper: reads `R(a, d)`, writes `W(a, d)` and
//! atomic read-modify-writes `RW(a, d_r, d_w)`. Addresses identify aligned
//! word locations; values are opaque word-sized data.

use std::fmt;

/// A shared-memory location (an aligned word address).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

/// A word of data read or written by an operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u64);

/// A process (logical processor) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u16);

impl Addr {
    /// The conventional "only address" used by single-location (VMC) instances.
    pub const ZERO: Addr = Addr(0);
}

impl Value {
    /// The conventional initial value `d_I` when none is configured.
    pub const INITIAL: Value = Value(0);
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

impl From<u16> for ProcId {
    fn from(v: u16) -> Self {
        ProcId(v)
    }
}

/// A single memory operation, including the data it observed/produced.
///
/// `Rmw` models an atomic read-modify-write: it returns `read` and installs
/// `write` with no other operation to the same address in between.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `R(a, d)` — a load of `addr` that returned `value`.
    Read {
        /// The accessed location.
        addr: Addr,
        /// The value the load returned.
        value: Value,
    },
    /// `W(a, d)` — a store of `value` to `addr`.
    Write {
        /// The accessed location.
        addr: Addr,
        /// The value the store installed.
        value: Value,
    },
    /// `RW(a, d_r, d_w)` — an atomic read-modify-write that observed `read`
    /// and installed `write`.
    Rmw {
        /// The accessed location.
        addr: Addr,
        /// The value the atomic observed (`d_r`).
        read: Value,
        /// The value the atomic installed (`d_w`).
        write: Value,
    },
}

impl Op {
    /// Convenience constructor for a read.
    #[inline]
    pub fn read(addr: impl Into<Addr>, value: impl Into<Value>) -> Self {
        Op::Read {
            addr: addr.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a write.
    #[inline]
    pub fn write(addr: impl Into<Addr>, value: impl Into<Value>) -> Self {
        Op::Write {
            addr: addr.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for an atomic read-modify-write.
    #[inline]
    pub fn rmw(addr: impl Into<Addr>, read: impl Into<Value>, write: impl Into<Value>) -> Self {
        Op::Rmw {
            addr: addr.into(),
            read: read.into(),
            write: write.into(),
        }
    }

    /// Single-address shorthand `R(d)` (address 0), per the paper's notation.
    #[inline]
    pub fn r(value: impl Into<Value>) -> Self {
        Op::read(Addr::ZERO, value)
    }

    /// Single-address shorthand `W(d)` (address 0).
    #[inline]
    pub fn w(value: impl Into<Value>) -> Self {
        Op::write(Addr::ZERO, value)
    }

    /// Single-address shorthand `RW(d_r, d_w)` (address 0).
    #[inline]
    pub fn rw(read: impl Into<Value>, write: impl Into<Value>) -> Self {
        Op::rmw(Addr::ZERO, read, write)
    }

    /// The address this operation touches.
    #[inline]
    pub fn addr(&self) -> Addr {
        match *self {
            Op::Read { addr, .. } | Op::Write { addr, .. } | Op::Rmw { addr, .. } => addr,
        }
    }

    /// The value this operation observed, if it has a read component.
    #[inline]
    pub fn read_value(&self) -> Option<Value> {
        match *self {
            Op::Read { value, .. } => Some(value),
            Op::Rmw { read, .. } => Some(read),
            Op::Write { .. } => None,
        }
    }

    /// The value this operation installed, if it has a write component.
    #[inline]
    pub fn written_value(&self) -> Option<Value> {
        match *self {
            Op::Write { value, .. } => Some(value),
            Op::Rmw { write, .. } => Some(write),
            Op::Read { .. } => None,
        }
    }

    /// True if the operation has a read component (`Read` or `Rmw`).
    #[inline]
    pub fn is_reading(&self) -> bool {
        self.read_value().is_some()
    }

    /// True if the operation has a write component (`Write` or `Rmw`).
    #[inline]
    pub fn is_writing(&self) -> bool {
        self.written_value().is_some()
    }

    /// True if this is an atomic read-modify-write.
    #[inline]
    pub fn is_rmw(&self) -> bool {
        matches!(self, Op::Rmw { .. })
    }

    /// Returns a copy of this operation with its address replaced.
    #[inline]
    pub fn with_addr(self, addr: Addr) -> Self {
        match self {
            Op::Read { value, .. } => Op::Read { addr, value },
            Op::Write { value, .. } => Op::Write { addr, value },
            Op::Rmw { read, write, .. } => Op::Rmw { addr, read, write },
        }
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Read { addr, value } => write!(f, "R({addr},{value})"),
            Op::Write { addr, value } => write!(f, "W({addr},{value})"),
            Op::Rmw { addr, read, write } => write!(f, "RW({addr},{read},{write})"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies one operation inside a [`crate::Trace`]: process `proc`, the
/// `index`-th operation of that process's history (program order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpRef {
    /// The process whose history contains the operation.
    pub proc: ProcId,
    /// Zero-based position within the process history (program order).
    pub index: u32,
}

impl OpRef {
    /// Construct an operation reference.
    #[inline]
    pub fn new(proc: impl Into<ProcId>, index: u32) -> Self {
        OpRef {
            proc: proc.into(),
            index,
        }
    }
}

impl fmt::Debug for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.proc, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_components() {
        let r = Op::read(3u32, 7u64);
        assert_eq!(r.addr(), Addr(3));
        assert_eq!(r.read_value(), Some(Value(7)));
        assert_eq!(r.written_value(), None);
        assert!(r.is_reading());
        assert!(!r.is_writing());
        assert!(!r.is_rmw());
    }

    #[test]
    fn write_components() {
        let w = Op::write(1u32, 9u64);
        assert_eq!(w.read_value(), None);
        assert_eq!(w.written_value(), Some(Value(9)));
        assert!(!w.is_reading());
        assert!(w.is_writing());
    }

    #[test]
    fn rmw_components() {
        let m = Op::rmw(2u32, 4u64, 5u64);
        assert_eq!(m.read_value(), Some(Value(4)));
        assert_eq!(m.written_value(), Some(Value(5)));
        assert!(m.is_reading() && m.is_writing() && m.is_rmw());
    }

    #[test]
    fn single_address_shorthand_uses_addr_zero() {
        assert_eq!(Op::r(1u64).addr(), Addr::ZERO);
        assert_eq!(Op::w(1u64).addr(), Addr::ZERO);
        assert_eq!(Op::rw(1u64, 2u64).addr(), Addr::ZERO);
    }

    #[test]
    fn with_addr_replaces_only_address() {
        let m = Op::rmw(2u32, 4u64, 5u64).with_addr(Addr(9));
        assert_eq!(m, Op::rmw(9u32, 4u64, 5u64));
    }

    #[test]
    fn display_formats_match_paper_notation() {
        assert_eq!(Op::read(0u32, 3u64).to_string(), "R(0,3)");
        assert_eq!(Op::write(1u32, 4u64).to_string(), "W(1,4)");
        assert_eq!(Op::rmw(2u32, 5u64, 6u64).to_string(), "RW(2,5,6)");
    }

    #[test]
    fn opref_ordering_is_proc_then_index() {
        let a = OpRef::new(0u16, 5);
        let b = OpRef::new(1u16, 0);
        assert!(a < b);
    }
}
