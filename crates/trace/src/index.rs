//! Per-address operation index.
//!
//! The paper's §3 definition makes coherence a *per-address* property, so
//! every solver starts by restricting the trace to one address. Doing that
//! with `trace.iter_ops().filter(|(_, op)| op.addr() == addr)` costs
//! O(total ops) *per address* — O(addrs × ops) for a whole-execution
//! verification, and each solver historically repeated the scan several
//! times (applicability check, precheck, op collection).
//!
//! [`AddrIndex::build`] performs **one** pass over the trace and produces,
//! for every touched address, an [`AddrOps`]: the per-process operation
//! lists (with original [`OpRef`]s), the per-value write counts, the
//! initial/final values and the structural facts the Figure 5.3
//! classifier and the solver dispatcher condition on. Whole-execution
//! setup therefore drops from quadratic-in-addresses to O(ops), and the
//! per-address solves of the parallel engine share one immutable index.

use crate::op::{Addr, Op, OpRef, Value};
use crate::trace::Trace;
use std::collections::BTreeMap;

/// All operations of one address, organised for the VMC solvers: one
/// program-ordered `(OpRef, Op)` list per process (refs point into the
/// *original* trace), plus per-value write counts and cached structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrOps {
    addr: Addr,
    initial: Value,
    final_value: Option<Value>,
    per_proc: Vec<Vec<(OpRef, Op)>>,
    write_counts: BTreeMap<Value, usize>,
    num_ops: usize,
    rmw_ops: usize,
}

impl AddrOps {
    fn empty(trace: &Trace, addr: Addr) -> AddrOps {
        AddrOps {
            addr,
            initial: trace.initial(addr),
            final_value: trace.final_value(addr),
            per_proc: vec![Vec::new(); trace.num_procs()],
            write_counts: BTreeMap::new(),
            num_ops: 0,
            rmw_ops: 0,
        }
    }

    /// As [`AddrOps::empty`], with each per-process list pre-sized to an
    /// exact capacity (the [`AddrIndex::build`] counting pass), so filling
    /// it never reallocates.
    fn with_capacities(trace: &Trace, addr: Addr, caps: &[u32]) -> AddrOps {
        debug_assert_eq!(caps.len(), trace.num_procs());
        AddrOps {
            addr,
            initial: trace.initial(addr),
            final_value: trace.final_value(addr),
            per_proc: caps
                .iter()
                .map(|&c| Vec::with_capacity(c as usize))
                .collect(),
            write_counts: BTreeMap::new(),
            num_ops: 0,
            rmw_ops: 0,
        }
    }

    fn push(&mut self, r: OpRef, op: Op) {
        debug_assert_eq!(op.addr(), self.addr);
        self.per_proc[r.proc.0 as usize].push((r, op));
        self.num_ops += 1;
        if op.is_rmw() {
            self.rmw_ops += 1;
        }
        if let Some(v) = op.written_value() {
            *self.write_counts.entry(v).or_insert(0) += 1;
        }
    }

    /// Assemble an [`AddrOps`] directly from per-process `(OpRef, Op)`
    /// lists, without a backing [`Trace`]. This is how the streaming
    /// engine re-materialises an address for exact verification: the refs
    /// must be the operations' original program-order identities and each
    /// list must be in program order, exactly as [`AddrIndex::build`]
    /// would have produced them, so the resulting value is
    /// indistinguishable (`==`) from the batch-built index entry.
    pub fn from_parts(
        addr: Addr,
        initial: Value,
        final_value: Option<Value>,
        per_proc: Vec<Vec<(OpRef, Op)>>,
    ) -> AddrOps {
        let mut ops = AddrOps {
            addr,
            initial,
            final_value,
            per_proc: vec![Vec::new(); per_proc.len()],
            write_counts: BTreeMap::new(),
            num_ops: 0,
            rmw_ops: 0,
        };
        for (p, list) in per_proc.into_iter().enumerate() {
            ops.per_proc[p] = Vec::with_capacity(list.len());
            for (r, op) in list {
                debug_assert_eq!(usize::from(r.proc.0), p, "ref/process mismatch");
                ops.push(r, op);
            }
        }
        ops
    }

    /// Index the operations of `trace` at one `addr` (a single O(ops)
    /// scan). Prefer [`AddrIndex::build`] when several addresses are
    /// needed — it indexes them all in the same single scan.
    pub fn of(trace: &Trace, addr: Addr) -> AddrOps {
        let mut ops = AddrOps::empty(trace, addr);
        for (r, op) in trace.iter_ops() {
            if op.addr() == addr {
                ops.push(r, op);
            }
        }
        ops
    }

    /// The indexed address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The initial value `d_I` of the address.
    pub fn initial(&self) -> Value {
        self.initial
    }

    /// The required final value `d_F`, if configured.
    pub fn final_value(&self) -> Option<Value> {
        self.final_value
    }

    /// Per-process operation lists (index = process id), each in program
    /// order, with refs into the original trace.
    pub fn per_proc(&self) -> &[Vec<(OpRef, Op)>] {
        &self.per_proc
    }

    /// All `(OpRef, Op)` pairs, by process then program order — the same
    /// order as `trace.iter_ops()` filtered to this address.
    pub fn iter(&self) -> impl Iterator<Item = (OpRef, Op)> + '_ {
        self.per_proc.iter().flatten().copied()
    }

    /// Number of operations at this address.
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// True if no operation touches this address.
    pub fn is_empty(&self) -> bool {
        self.num_ops == 0
    }

    /// How many times each value is written (RMW write components count).
    pub fn write_counts(&self) -> &BTreeMap<Value, usize> {
        &self.write_counts
    }

    /// How many operations write `value`.
    pub fn writes_of(&self, value: Value) -> usize {
        self.write_counts.get(&value).copied().unwrap_or(0)
    }

    /// Maximum number of writes of any single value.
    pub fn max_writes_per_value(&self) -> usize {
        self.write_counts.values().copied().max().unwrap_or(0)
    }

    /// Longest per-process operation list.
    pub fn max_ops_per_proc(&self) -> usize {
        self.per_proc.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of processes with at least one operation here.
    pub fn nonempty_procs(&self) -> usize {
        self.per_proc.iter().filter(|v| !v.is_empty()).count()
    }

    /// True if every operation is an atomic read-modify-write (vacuously
    /// true when empty, matching the historical applicability checks).
    pub fn all_rmw(&self) -> bool {
        self.rmw_ops == self.num_ops
    }

    /// True if at least one operation is an RMW.
    pub fn has_rmw(&self) -> bool {
        self.rmw_ops > 0
    }
}

/// A per-address index over a whole trace: one [`AddrOps`] per touched
/// address, sorted by address, built in a single pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrIndex {
    entries: Vec<AddrOps>,
}

impl AddrIndex {
    /// Index every address of `trace` in O(ops + addrs·procs). The address
    /// set and order match [`Trace::addresses`] exactly.
    ///
    /// Two passes, zero reallocation: the first pass only *counts* ops per
    /// `(address, process)` into one flat buffer, the second fills
    /// exact-capacity per-process vectors. The historical single-pass
    /// build grew every per-process `Vec` by doubling, so large traces
    /// paid O(ops) redundant element moves plus one realloc chain per
    /// `(address, process)` pair; now every element is written exactly
    /// once into its final slot (measured in `bench/benches/
    /// sim_pipeline.rs`, `sim/addr-index`).
    pub fn build(trace: &Trace) -> AddrIndex {
        let procs = trace.num_procs();
        let mut slot: std::collections::HashMap<Addr, usize> = std::collections::HashMap::new();
        // Discovery order of addresses; `counts[slot * procs + p]` is the
        // number of ops of process `p` at that address.
        let mut discovered: Vec<Addr> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for (r, op) in trace.iter_ops() {
            let addr = op.addr();
            let i = *slot.entry(addr).or_insert_with(|| {
                discovered.push(addr);
                counts.resize(counts.len() + procs, 0);
                discovered.len() - 1
            });
            counts[i * procs + r.proc.0 as usize] += 1;
        }
        let mut entries: Vec<AddrOps> = discovered
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                AddrOps::with_capacities(trace, addr, &counts[i * procs..(i + 1) * procs])
            })
            .collect();
        for (r, op) in trace.iter_ops() {
            let i = slot[&op.addr()];
            entries[i].push(r, op);
        }
        entries.sort_unstable_by_key(AddrOps::addr);
        AddrIndex { entries }
    }

    /// Number of distinct addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace touches no address.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The indexed addresses, sorted ascending.
    pub fn addresses(&self) -> impl Iterator<Item = Addr> + '_ {
        self.entries.iter().map(AddrOps::addr)
    }

    /// The entries, sorted by address.
    pub fn iter(&self) -> impl Iterator<Item = &AddrOps> {
        self.entries.iter()
    }

    /// The `i`-th entry in address order.
    pub fn entry(&self, i: usize) -> &AddrOps {
        &self.entries[i]
    }

    /// Look up one address (binary search).
    pub fn get(&self, addr: Addr) -> Option<&AddrOps> {
        self.entries
            .binary_search_by_key(&addr, AddrOps::addr)
            .ok()
            .map(|i| &self.entries[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(2u32, 5u64),
                Op::read(0u32, 1u64),
            ])
            .proc([Op::rmw(2u32, 5u64, 6u64), Op::write(0u32, 1u64)])
            .proc([])
            .initial(0u32, 9u64)
            .final_value(2u32, 6u64)
            .build()
    }

    #[test]
    fn build_matches_trace_addresses() {
        let t = sample();
        let idx = AddrIndex::build(&t);
        assert_eq!(idx.addresses().collect::<Vec<_>>(), t.addresses());
        assert_eq!(idx.len(), 2);
        assert!(idx.get(Addr(1)).is_none());
    }

    #[test]
    fn entries_match_single_address_builds() {
        let t = sample();
        let idx = AddrIndex::build(&t);
        for addr in t.addresses() {
            assert_eq!(idx.get(addr).unwrap(), &AddrOps::of(&t, addr));
        }
    }

    #[test]
    fn per_address_structure() {
        let t = sample();
        let a0 = AddrOps::of(&t, Addr(0));
        assert_eq!(a0.num_ops(), 3);
        assert_eq!(a0.initial(), Value(9));
        assert_eq!(a0.final_value(), None);
        assert_eq!(a0.writes_of(Value(1)), 2);
        assert_eq!(a0.max_writes_per_value(), 2);
        assert_eq!(a0.max_ops_per_proc(), 2);
        assert_eq!(a0.nonempty_procs(), 2);
        assert!(!a0.has_rmw());

        let a2 = AddrOps::of(&t, Addr(2));
        assert_eq!(a2.final_value(), Some(Value(6)));
        assert_eq!(a2.initial(), Value::INITIAL);
        assert!(a2.has_rmw());
        assert!(!a2.all_rmw());
        assert_eq!(a2.writes_of(Value(5)), 1);
        assert_eq!(a2.writes_of(Value(6)), 1);
    }

    #[test]
    fn iter_order_matches_filtered_iter_ops() {
        let t = sample();
        for addr in t.addresses() {
            let from_index: Vec<(OpRef, Op)> = AddrOps::of(&t, addr).iter().collect();
            let from_scan: Vec<(OpRef, Op)> =
                t.iter_ops().filter(|(_, op)| op.addr() == addr).collect();
            assert_eq!(from_index, from_scan, "{addr:?}");
        }
    }

    #[test]
    fn refs_point_into_original_trace() {
        let t = sample();
        let idx = AddrIndex::build(&t);
        for ops in idx.iter() {
            for (r, op) in ops.iter() {
                assert_eq!(t.op(r), Some(op));
            }
        }
    }

    #[test]
    fn empty_trace_and_empty_address() {
        let idx = AddrIndex::build(&Trace::new());
        assert!(idx.is_empty());
        let t = sample();
        let none = AddrOps::of(&t, Addr(77));
        assert!(none.is_empty());
        assert!(none.all_rmw()); // vacuous, as for the solvers
        assert_eq!(none.max_writes_per_value(), 0);
    }

    #[test]
    fn from_parts_is_indistinguishable_from_batch_index() {
        let t = sample();
        let idx = AddrIndex::build(&t);
        for addr in t.addresses() {
            let e = idx.get(addr).unwrap();
            let rebuilt =
                AddrOps::from_parts(addr, e.initial(), e.final_value(), e.per_proc().to_vec());
            assert_eq!(&rebuilt, e);
        }
    }

    #[test]
    fn random_traces_index_consistently() {
        use crate::gen::{gen_sc_trace, GenConfig};
        for seed in 0..10u64 {
            let (t, _) = gen_sc_trace(&GenConfig {
                procs: 4,
                total_ops: 60,
                addrs: 5,
                seed,
                ..Default::default()
            });
            let idx = AddrIndex::build(&t);
            assert_eq!(idx.addresses().collect::<Vec<_>>(), t.addresses());
            for addr in t.addresses() {
                let e = idx.get(addr).unwrap();
                assert_eq!(e, &AddrOps::of(&t, addr));
                assert_eq!(
                    e.write_counts()
                        .iter()
                        .map(|(&v, &c)| (v, c))
                        .collect::<Vec<_>>(),
                    t.writes_per_value(addr)
                        .iter()
                        .map(|(&v, &c)| (v, c))
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}
