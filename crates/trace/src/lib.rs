//! # vermem-trace
//!
//! The execution-trace substrate for the `vermem` verifier suite, which
//! reproduces *“The Complexity of Verifying Memory Coherence and
//! Consistency”* (Cantin, Lipasti & Smith; SPAA 2003 brief announcement and
//! UW-Madison TR ECE-03-01).
//!
//! This crate models:
//!
//! * memory [operations](Op) — `R(a,d)`, `W(a,d)`, `RW(a,d_r,d_w)` (§3);
//! * [process histories](ProcessHistory) — per-processor program-ordered
//!   operation sequences;
//! * [traces](Trace) — sets of histories with initial (`d_I`) and final
//!   (`d_F`) values, with per-address projection;
//! * [schedules](Schedule) — interleavings, plus the polynomial certificate
//!   checkers of Theorem 4.2 ([`check_coherent_schedule`],
//!   [`check_sc_schedule`]);
//! * the [Figure 5.3 classifier](classify) mapping instances to the paper's
//!   complexity table;
//! * [workload generators and violation injectors](gen);
//! * [text](fmt) and [binary (`binary` module)](binary) trace formats.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod classify;
pub mod fmt;
pub mod gen;
mod history;
pub mod index;
mod op;
pub mod readmap_util;
mod schedule;
pub mod stats;
mod trace;

pub use history::ProcessHistory;
pub use index::{AddrIndex, AddrOps};
pub use op::{Addr, Op, OpRef, ProcId, Value};
pub use readmap_util::{read_mapping, write_orders, ReadSource};
pub use schedule::{
    check_coherent_schedule, check_sc_schedule, is_coherent_schedule, is_sc_schedule, Schedule,
    ScheduleError,
};
pub use trace::{Trace, TraceBuilder};
