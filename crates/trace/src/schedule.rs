//! Schedules (interleavings) and the polynomial-time certificate checkers of
//! Theorem 4.2: given a schedule, decide whether it is a *coherent schedule*
//! (single address, §3) or a *sequentially consistent schedule* (all
//! addresses, Definition 6.1).

use crate::op::{Addr, Op, OpRef, Value};
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// A schedule: a total order over (a subset of) the operations of a trace,
/// given as [`OpRef`]s into that trace.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<OpRef>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an explicit order of operation references.
    pub fn from_refs(order: impl IntoIterator<Item = OpRef>) -> Self {
        Schedule {
            order: order.into_iter().collect(),
        }
    }

    /// Append the next operation.
    pub fn push(&mut self, op_ref: OpRef) {
        self.order.push(op_ref);
    }

    /// The schedule order.
    pub fn refs(&self) -> &[OpRef] {
        &self.order
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Resolve the schedule against a trace, yielding `(OpRef, Op)` pairs.
    /// Returns `None` for the first dangling reference.
    pub fn resolve<'t>(
        &'t self,
        trace: &'t Trace,
    ) -> impl Iterator<Item = Option<(OpRef, Op)>> + 't {
        self.order
            .iter()
            .map(move |&r| trace.op(r).map(|op| (r, op)))
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.order.iter()).finish()
    }
}

impl FromIterator<OpRef> for Schedule {
    fn from_iter<T: IntoIterator<Item = OpRef>>(iter: T) -> Self {
        Schedule::from_refs(iter)
    }
}

/// Why a schedule failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A reference points outside the trace.
    DanglingRef(OpRef),
    /// An operation appears more than once.
    DuplicateOp(OpRef),
    /// Not every operation of the trace (restricted to the checked address
    /// set) appears in the schedule.
    MissingOps {
        /// Operations the schedule should cover.
        expected: usize,
        /// Operations it actually covers.
        found: usize,
    },
    /// Program order violated: `later` was scheduled before `earlier`.
    ProgramOrder {
        /// The program-order-earlier operation.
        earlier: OpRef,
        /// The program-order-later operation that was scheduled first.
        later: OpRef,
    },
    /// A read returned a value other than the one last written.
    ReadValue {
        /// The offending read.
        read: OpRef,
        /// The value the schedule makes current at that point.
        expected: Value,
        /// The value the read actually returned.
        actual: Value,
    },
    /// The last write to `addr` did not produce the required final value.
    FinalValue {
        /// The constrained location.
        addr: Addr,
        /// The required final value `d_F`.
        expected: Value,
        /// The value the schedule leaves behind.
        actual: Value,
    },
    /// An operation touches an address outside the checked set (only for the
    /// single-address checker).
    WrongAddress {
        /// The offending operation.
        op: OpRef,
        /// The unexpected address it touches.
        addr: Addr,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::DanglingRef(r) => write!(f, "dangling operation reference {r:?}"),
            ScheduleError::DuplicateOp(r) => write!(f, "operation {r:?} scheduled twice"),
            ScheduleError::MissingOps { expected, found } => {
                write!(f, "schedule covers {found} of {expected} operations")
            }
            ScheduleError::ProgramOrder { earlier, later } => {
                write!(
                    f,
                    "program order violated: {later:?} scheduled before {earlier:?}"
                )
            }
            ScheduleError::ReadValue {
                read,
                expected,
                actual,
            } => write!(
                f,
                "read {read:?} returned {actual:?} but the last write installed {expected:?}"
            ),
            ScheduleError::FinalValue {
                addr,
                expected,
                actual,
            } => write!(
                f,
                "final value of {addr:?} is {actual:?}, required {expected:?}"
            ),
            ScheduleError::WrongAddress { op, addr } => {
                write!(f, "operation {op:?} touches unexpected address {addr:?}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Shared structural validation: the schedule must be a permutation of all
/// operations of `trace` whose address satisfies `in_scope`, respecting each
/// process's program order (over in-scope operations only).
fn check_structure(
    trace: &Trace,
    schedule: &Schedule,
    in_scope: impl Fn(Addr) -> bool,
) -> Result<(), ScheduleError> {
    let expected: usize = trace
        .iter_ops()
        .filter(|(_, op)| in_scope(op.addr()))
        .count();
    if schedule.len() != expected {
        // Distinguish dangling/duplicate cases below when possible, but a
        // plain size mismatch is already an error.
        if schedule.len() < expected {
            // fall through: may also be dangling or duplicated; check those
            // first for a more precise error.
        }
    }

    // Track, per process, the next expected program-order position among the
    // in-scope ops, and detect duplicates with a seen-set.
    let mut seen: std::collections::BTreeSet<OpRef> = std::collections::BTreeSet::new();
    let mut last_index: BTreeMap<u16, u32> = BTreeMap::new();

    for &r in schedule.refs() {
        let op = trace.op(r).ok_or(ScheduleError::DanglingRef(r))?;
        if !in_scope(op.addr()) {
            return Err(ScheduleError::WrongAddress {
                op: r,
                addr: op.addr(),
            });
        }
        if !seen.insert(r) {
            return Err(ScheduleError::DuplicateOp(r));
        }
        if let Some(&prev) = last_index.get(&r.proc.0) {
            if r.index <= prev {
                return Err(ScheduleError::ProgramOrder {
                    earlier: r,
                    later: OpRef {
                        proc: r.proc,
                        index: prev,
                    },
                });
            }
            // Every in-scope op between prev and r.index must have been seen
            // already — but since in-scope ops of one process must appear in
            // increasing index order and all must appear, the completeness
            // check below catches skips.
        }
        last_index.insert(r.proc.0, r.index);
    }

    if schedule.len() != expected {
        return Err(ScheduleError::MissingOps {
            expected,
            found: schedule.len(),
        });
    }

    // Program order within a process also requires *no skipped in-scope op*:
    // combined with completeness (exact count + no duplicates + no dangling),
    // monotone indices per process imply the sequence is exactly the in-scope
    // subsequence in order.
    Ok(())
}

/// Check that `schedule` is a **coherent schedule** for the operations of
/// `trace` at address `addr` (§3): an interleaving of the per-process
/// projections in which every read returns the value written by the
/// immediately preceding write (reads before the first write return the
/// initial value `d_I`), and — if a final value is configured — the last
/// write writes `d_F`.
///
/// Runs in O(n log n) (set operations); this is the NP certificate checker
/// from the membership half of Theorem 4.2.
pub fn check_coherent_schedule(
    trace: &Trace,
    addr: Addr,
    schedule: &Schedule,
) -> Result<(), ScheduleError> {
    check_structure(trace, schedule, |a| a == addr)?;

    let mut current = trace.initial(addr);
    let mut last_write: Option<OpRef> = None;
    for &r in schedule.refs() {
        let op = trace.op(r).expect("structure checked");
        if let Some(read) = op.read_value() {
            if read != current {
                return Err(ScheduleError::ReadValue {
                    read: r,
                    expected: current,
                    actual: read,
                });
            }
        }
        if let Some(written) = op.written_value() {
            current = written;
            last_write = Some(r);
        }
    }
    if let Some(expected) = trace.final_value(addr) {
        let actual = current;
        if actual != expected {
            let _ = last_write;
            return Err(ScheduleError::FinalValue {
                addr,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Check that `schedule` is a **sequentially consistent schedule** for all
/// operations of `trace` (Definition 6.1): a single interleaving of every
/// process history in which each read returns the value written by the
/// immediately preceding write *to the same address*, with per-address
/// initial and final values honoured.
pub fn check_sc_schedule(trace: &Trace, schedule: &Schedule) -> Result<(), ScheduleError> {
    check_structure(trace, schedule, |_| true)?;

    let mut current: BTreeMap<Addr, Value> = BTreeMap::new();
    for &r in schedule.refs() {
        let op = trace.op(r).expect("structure checked");
        let addr = op.addr();
        let cur = current
            .get(&addr)
            .copied()
            .unwrap_or_else(|| trace.initial(addr));
        if let Some(read) = op.read_value() {
            if read != cur {
                return Err(ScheduleError::ReadValue {
                    read: r,
                    expected: cur,
                    actual: read,
                });
            }
        }
        if let Some(written) = op.written_value() {
            current.insert(addr, written);
        }
    }
    for (&addr, &expected) in trace.final_values() {
        let actual = current
            .get(&addr)
            .copied()
            .unwrap_or_else(|| trace.initial(addr));
        if actual != expected {
            return Err(ScheduleError::FinalValue {
                addr,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Convenience: true iff the schedule is a coherent schedule for `addr`.
pub fn is_coherent_schedule(trace: &Trace, addr: Addr, schedule: &Schedule) -> bool {
    check_coherent_schedule(trace, addr, schedule).is_ok()
}

/// Convenience: true iff the schedule is sequentially consistent.
pub fn is_sc_schedule(trace: &Trace, schedule: &Schedule) -> bool {
    check_sc_schedule(trace, schedule).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    /// P0: W(1); P1: R(1). Coherent with order W,R.
    fn simple() -> Trace {
        TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build()
    }

    fn sched(pairs: &[(u16, u32)]) -> Schedule {
        pairs.iter().map(|&(p, i)| OpRef::new(p, i)).collect()
    }

    #[test]
    fn accepts_valid_coherent_schedule() {
        let t = simple();
        assert!(is_coherent_schedule(
            &t,
            Addr::ZERO,
            &sched(&[(0, 0), (1, 0)])
        ));
    }

    #[test]
    fn rejects_read_before_write() {
        let t = simple();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(1, 0), (0, 0)])).unwrap_err();
        assert!(matches!(err, ScheduleError::ReadValue { .. }));
    }

    #[test]
    fn rejects_incomplete_schedule() {
        let t = simple();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(0, 0)])).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::MissingOps {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn rejects_duplicates() {
        let t = simple();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(0, 0), (0, 0)])).unwrap_err();
        assert_eq!(err, ScheduleError::DuplicateOp(OpRef::new(0u16, 0)));
    }

    #[test]
    fn rejects_dangling_ref() {
        let t = simple();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(0, 0), (4, 0)])).unwrap_err();
        assert_eq!(err, ScheduleError::DanglingRef(OpRef::new(4u16, 0)));
    }

    #[test]
    fn rejects_program_order_violation() {
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::w(2u64)]).build();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(0, 1), (0, 0)])).unwrap_err();
        assert!(matches!(err, ScheduleError::ProgramOrder { .. }));
    }

    #[test]
    fn initial_value_serves_early_reads() {
        let t = TraceBuilder::new()
            .proc([Op::r(7u64), Op::w(1u64)])
            .initial(0u32, 7u64)
            .build();
        assert!(is_coherent_schedule(
            &t,
            Addr::ZERO,
            &sched(&[(0, 0), (0, 1)])
        ));
    }

    #[test]
    fn final_value_constraint_enforced() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        let err = check_coherent_schedule(&t, Addr::ZERO, &sched(&[(0, 0), (0, 1)])).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::FinalValue {
                addr: Addr::ZERO,
                expected: Value(1),
                actual: Value(2)
            }
        );
    }

    #[test]
    fn rmw_atomicity_checked() {
        // RW(0->1) then RW(1->2) is fine; swapping them is not.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 2u64)])
            .build();
        assert!(is_coherent_schedule(
            &t,
            Addr::ZERO,
            &sched(&[(0, 0), (1, 0)])
        ));
        assert!(!is_coherent_schedule(
            &t,
            Addr::ZERO,
            &sched(&[(1, 0), (0, 0)])
        ));
    }

    #[test]
    fn sc_schedule_tracks_addresses_independently() {
        // Classic message passing: P0: W(x,1) W(y,1); P1: R(y,1) R(x,1).
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let ok = sched(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(is_sc_schedule(&t, &ok));
        let bad = sched(&[(0, 1), (1, 0), (1, 1), (0, 0)]);
        assert!(!is_sc_schedule(&t, &bad));
    }

    #[test]
    fn coherent_checker_rejects_foreign_address_ops() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .build();
        let err = check_coherent_schedule(&t, Addr(0), &sched(&[(0, 0), (0, 1)])).unwrap_err();
        assert!(matches!(err, ScheduleError::WrongAddress { .. }));
    }

    #[test]
    fn sc_final_values_checked_per_address() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(1u32, 2u64)])
            .final_value(1u32, 3u64)
            .build();
        let err = check_sc_schedule(&t, &sched(&[(0, 0), (1, 0)])).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::FinalValue { addr: Addr(1), .. }
        ));
    }
}
