//! # vermem — verifying memory coherence and consistency
//!
//! A production-quality reproduction of *“The Complexity of Verifying
//! Memory Coherence and Consistency”* (Jason F. Cantin, Mikko H. Lipasti,
//! James E. Smith; SPAA 2003 brief announcement / UW-Madison TR ECE-03-01):
//! a canonical trace-based verifier for shared-memory executions, the
//! polynomial special-case algorithms of the paper's Figure 5.3, executable
//! versions of all its reductions, and the substrates (a CDCL SAT solver
//! and a MESI multiprocessor simulator) needed to exercise them end to end.
//!
//! ## Quick start
//!
//! ```
//! use vermem::trace::{Op, TraceBuilder, Addr};
//! use vermem::coherence;
//!
//! // P0 writes 1; P1 reads 1 — a coherent single-location execution.
//! let trace = TraceBuilder::new()
//!     .proc([Op::w(1u64)])
//!     .proc([Op::r(1u64)])
//!     .build();
//! let verdict = coherence::verify(&trace, Addr::ZERO);
//! assert!(verdict.is_coherent());
//! ```
//!
//! ## Crate map
//!
//! * [`trace`] — operations, histories, traces, schedules and the
//!   polynomial certificate checkers (Theorem 4.2), generators, formats.
//! * [`sat`] — the CDCL/DPLL SAT substrate.
//! * [`coherence`] — VMC solvers: exact (backtracking, SAT encoding) and
//!   every Figure 5.3 fast path, with auto-dispatch.
//! * [`consistency`] — VSC/VSCC, memory models (SC/TSO/PSO/coherence-only),
//!   VSC-Conflict merging, litmus tests, LRC.
//! * [`reductions`] — Figures 4.1, 4.2, 5.1, 5.2, 6.1, 6.2 as code.
//! * [`sim`] — the MESI/TSO multiprocessor with fault injection and
//!   write-order capture.
//! * [`util`] — the zero-dependency substrate: deterministic PRNG,
//!   property-testing harness, bench harness, and binary codec.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vermem_coherence as coherence;
pub use vermem_consistency as consistency;
pub use vermem_reductions as reductions;
pub use vermem_sat as sat;
pub use vermem_sim as sim;
pub use vermem_trace as trace;
pub use vermem_util as util;
