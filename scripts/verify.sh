#!/usr/bin/env bash
# Full offline verification gate for the vermem workspace.
#
# Everything runs with --offline: the workspace has zero registry
# dependencies (see the hermeticity check below), so a network-less
# container must be able to build, test, lint, and format-check from a
# cold checkout.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity: no registry dependencies in any Cargo.toml"
# Dependency lines are either `name = { path = ... }` / `name.workspace =
# true` (allowed) or registry forms like `name = "1.0"` / `name = {
# version = ... }` (forbidden). Flag any dependency entry that names a
# version, which only registry (or git) dependencies do.
bad=$(grep -rn --include=Cargo.toml -E '^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*("|.*version[[:space:]]*=)' \
    Cargo.toml crates/*/Cargo.toml \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*(version|edition|license|repository|rust-version|name|description|debug|resolver|harness|path)[[:space:]]*=' \
    || true)
if [[ -n "$bad" ]]; then
    echo "registry-style dependency entries found:" >&2
    echo "$bad" >&2
    exit 1
fi
# Belt and braces: the six crates this workspace replaced must never be
# reintroduced as dependency keys.
for dep in rand proptest criterion crossbeam serde bytes; do
    if grep -rn --include=Cargo.toml -E "^[[:space:]]*${dep}[[:space:]]*(=|\.)" \
        Cargo.toml crates/*/Cargo.toml; then
        echo "forbidden dependency '${dep}' reintroduced" >&2
        exit 1
    fi
done
echo "    ok"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --offline (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace > /dev/null

echo "==> bench smoke (VERMEM_BENCH_FAST=1): thread-ladder bench runs"
VERMEM_BENCH_FAST=1 cargo bench -q --offline -p vermem-bench --bench par_verify \
    > /dev/null

echo "==> kernel substrate: no private memo plumbing in crates/consistency/src"
# The PR-5 contract: the operational searches (VSC/TSO/PSO) run on the
# shared exact-search kernel (crates/coherence/src/kernel.rs), which owns
# the memo table, budget, and cancellation. A `visited: HashSet` (or any
# tuple-keyed HashSet) reappearing in the consistency crate means a solver
# grew its own memoization again.
if grep -rn 'visited: HashSet\|HashSet<(' crates/consistency/src; then
    echo "private memo plumbing found in crates/consistency/src (use the kernel)" >&2
    exit 1
fi
echo "    ok"

echo "==> axiom framework: transition systems only in the compilers + legacy ablation"
# The PR-10 contract: memory models are declared as ModelSpec data and
# lowered by the two compilers — axiom/operational.rs (buffer machines on
# the shared kernel) and axiom/graph.rs (acyclicity models). The only
# other TransitionSystem impls allowed in the consistency crate are the
# verbatim pre-refactor machines preserved in legacy.rs behind
# `--engine legacy`; a new impl anywhere else means a model grew its own
# hand-rolled search again instead of a ModelSpec declaration.
bad=$(grep -rl 'impl TransitionSystem' crates/consistency/src \
    | grep -v -e '^crates/consistency/src/axiom/' \
              -e '^crates/consistency/src/legacy.rs$' || true)
if [[ -n "$bad" ]]; then
    echo "hand-rolled transition systems outside the axiom compilers:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "    ok"

echo "==> stream hot path: no std HashMap outside the legacy ablation module"
# The PR-9 contract: the ingest hot path (stream engine, dense tables,
# batch decoder) runs on index-addressed dense structures only. Hashed
# containers may appear solely in crates/coherence/src/stream/legacy.rs,
# the preserved pre-dense baseline behind `--hot-path legacy`. Doc
# comments may *name* HashMap (they describe the ablation); code may not.
hash_sites=$(grep -n 'HashMap' \
    crates/coherence/src/stream/mod.rs \
    crates/coherence/src/stream/tables.rs \
    crates/trace/src/binary.rs \
    | grep -vE ':[0-9]+:[[:space:]]*//' || true)
if [[ -n "$hash_sites" ]]; then
    echo "std HashMap on the stream hot path (only legacy.rs may hash):" >&2
    echo "$hash_sites" >&2
    exit 1
fi
echo "    ok"

echo "==> obs hot path: exactly one clock-read site in crates/util/src/obs/"
# The zero-overhead-when-off contract (DESIGN.md §Observability): every
# clock read funnels through obs::now_us(), which is only reached from
# enabled branches. Any other Instant::now() in the obs tree is a bug.
clock_sites=$(grep -rn 'Instant::now' crates/util/src/obs/ \
    | grep -cvE ':[0-9]+:[[:space:]]*//' || true)
if [[ "$clock_sites" -ne 1 ]]; then
    echo "expected exactly 1 Instant::now code site in crates/util/src/obs/, found ${clock_sites}:" >&2
    grep -rn 'Instant::now' crates/util/src/obs/ | grep -vE ':[0-9]+:[[:space:]]*//' >&2
    exit 1
fi
echo "    ok"

echo "==> experiments --json emits parseable BENCH_vmc.json (+ obs receipts)"
tmp=$(mktemp -d)
(
    cd "$tmp"
    VERMEM_BENCH_FAST=1 \
        "$OLDPWD/target/release/experiments" --json > /dev/null
)
python3 - "$tmp/BENCH_vmc.json" "BENCH_vmc.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "vermem-bench-vmc/v9", d["schema"]
assert d["par_verify"] and d["memo_ablation"] and d["prune_ablation"] \
    and d["model_kernel"] and d["tier_ablation"] and d["eaxiom"] \
    and d["estream"] and d["e_hotpath"], "empty receipts"
host = d["host_parallelism"]
assert host >= 1, host
for case in d["par_verify"]:
    # Bench honesty (PR-4): every case records host parallelism; every
    # ladder point above it is flagged overhead-only.
    assert case["host_parallelism"] == host, case
    jobs = [p["jobs"] for p in case["points"]]
    assert jobs[0] == 1 and len(jobs) >= 3, jobs
    for p in case["points"]:
        assert p["median_secs"] > 0 and p["ops_per_sec"] > 0
        assert p["overhead_only"] == (p["jobs"] > host), p
for row in d["memo_ablation"]:
    assert row["memo_hits"] >= 0 and row["memo_misses"] > 0, row
    assert row["states"] == row["memo_misses"], \
        "every visited state is a memo miss: %r" % row

# E-PRUNE shape: 5 configs per case, prune counters present, and within
# each case every pruned config explores at most the baseline's states.
prune = d["prune_ablation"]
by_case = {}
for row in prune:
    for k in ("states", "window_prunes", "symmetry_prunes",
              "nogood_hits", "nogoods_learned"):
        assert row[k] >= 0, row
    by_case.setdefault(row["case"], {})[row["config"]] = row
for case, rows in by_case.items():
    assert set(rows) == {"none", "windows", "symmetry", "nogoods", "all"}, \
        (case, sorted(rows))
    base = rows["none"]["states"]
    for cfg, row in rows.items():
        assert row["states"] <= base, \
            f"{case}/{cfg}: pruning grew the search ({row['states']} > {base})"

# E-KERNEL shape: per (case, model) exactly the kernel and legacy-keys
# configs; both walk the identical state set (memo_misses == states, as
# memoization is integral to the kernel); the packed/interned key path
# never allocates more key storage than legacy alloc-per-probe.
mk_by = {}
for row in d["model_kernel"]:
    assert row["model"] in ("SC", "TSO", "PSO"), row
    assert row["states"] > 0 and row["states"] == row["memo_misses"], row
    assert row["verdict"] in ("consistent", "violating", "unknown"), row
    mk_by.setdefault((row["case"], row["model"]), {})[row["config"]] = row
for (case, model), rows in mk_by.items():
    assert set(rows) == {"kernel", "legacy-keys"}, (case, model, sorted(rows))
    k, l = rows["kernel"], rows["legacy-keys"]
    assert k["states"] == l["states"], \
        f"{case}/{model}: key representations visited different state sets"
    assert k["key_allocs"] <= l["key_allocs"], \
        f"{case}/{model}: kernel keys allocated more than legacy"

# E-TIER shape: per family exactly the tiered and exact-only configs;
# the tier split always accounts for every processed address; and the two
# configs return identical verdict counts (bit-identity of the frontline).
def tier_check(doc, which):
    t_by = {}
    for row in doc["tier_ablation"]:
        assert row["frontline_decided"] >= 0 and row["escalated"] >= 0, row
        assert row["frontline_decided"] + row["escalated"] == row["addresses"], \
            f"{which}: tier split != addresses: {row}"
        assert row["traces"] > 0 and row["median_secs"] > 0, row
        t_by.setdefault(row["family"], {})[row["tier"]] = row
    assert set(t_by) >= {"healthy-sim", "generated", "litmus",
                         "fault-injected"}, sorted(t_by)
    for family, rows in t_by.items():
        assert set(rows) == {"closure,exact", "exact"}, (family, sorted(rows))
        a, b = rows["closure,exact"], rows["exact"]
        for k in ("coherent", "incoherent", "unknown", "traces", "addresses"):
            assert a[k] == b[k], \
                f"{which}: {family}: tier configs disagree on {k}: {a[k]} != {b[k]}"
    # Headline gate: the closure frontline decides >= 90% of healthy-sim
    # capture addresses without escalating to the exact kernel.
    hs = t_by["healthy-sim"]["closure,exact"]
    assert hs["frontline_decided"] * 10 >= hs["addresses"] * 9, \
        (f"{which}: healthy-sim frontline below 90%: "
         f"{hs['frontline_decided']}/{hs['addresses']}")
    return t_by

tier_check(d, "fresh")

# E-AXIOM shape: every declared model appears in every family through the
# compiled and SAT engines (plus legacy for the four base models); all
# engines report identical verdict-class counts (per-trace identity is
# asserted in-bench; the receipt re-checks the aggregates); the litmus
# corpus actually separates the models; and the RA polynomial frontline
# decides >= 90% of healthy unique-value generated traces.
def axiom_check(doc, which):
    ax_by = {}
    for row in doc["eaxiom"]:
        assert row["model"] in ("SC", "TSO", "PSO", "Coherence", "RA",
                                "ARM-dob"), row
        assert row["engine"] in ("compiled", "legacy", "sat"), row
        assert row["traces"] > 0 and row["median_secs"] > 0, row
        assert row["consistent"] + row["violating"] + row["unknown"] \
            == row["traces"], row
        assert row["unknown"] == 0, \
            f"{which}: unbudgeted eaxiom run returned unknown: {row}"
        ax_by.setdefault((row["family"], row["model"]), {})[row["engine"]] = row
    assert {f for (f, _) in ax_by} == {"litmus", "generated",
                                       "fault-injected"}, sorted(ax_by)
    for (family, model), rows in ax_by.items():
        want = {"compiled", "sat"} if model in ("RA", "ARM-dob") \
            else {"compiled", "legacy", "sat"}
        assert set(rows) == want, (which, family, model, sorted(rows))
        for k in ("traces", "consistent", "violating", "unknown"):
            vals = {r[k] for r in rows.values()}
            assert len(vals) == 1, \
                f"{which}: {family}/{model} engines disagree on {k}: {rows}"
    # Model-strength ordering on the litmus corpus: SC admits the fewest
    # behaviours, coherence-only the most, RA/ARM-dob strictly between.
    lit = {m: rows["compiled"]["consistent"]
           for (f, m), rows in ax_by.items() if f == "litmus"}
    assert lit["SC"] < lit["TSO"] <= lit["PSO"] < lit["Coherence"], lit
    assert lit["SC"] < lit["RA"] < lit["Coherence"], lit
    assert lit["SC"] < lit["ARM-dob"] < lit["Coherence"], lit
    fl = doc["eaxiom_ra_frontline"]
    assert fl["traces"] > 0 and 0.0 <= fl["decision_rate"] <= 1.0, fl
    assert fl["frontline_decided"] * 10 >= fl["traces"] * 9, \
        f"{which}: RA frontline decision rate below 90%: {fl}"
    return ax_by

axiom_check(d, "fresh")

# E-STREAM shape: one row per stream count {1, 4, 16} with throughput +
# latency receipts; streaming verdicts bit-identical to batch; retained
# state gated by the streams x window_slack bounded-memory budget; and
# the 10x-length probe retains an identical peak.
def estream_check(doc, which):
    rows = doc["estream"]
    assert [r["streams"] for r in rows] == [1, 4, 16], \
        (which, [r["streams"] for r in rows])
    for r in rows:
        for k in ("window", "window_slack", "jobs", "events", "median_secs",
                  "sustained_ops_per_sec", "detections",
                  "p99_detect_latency_us", "peak_retained_windows",
                  "incoherent", "verdict_parity"):
            assert k in r, (which, k, sorted(r))
        assert r["events"] > 0 and r["median_secs"] > 0, r
        assert r["sustained_ops_per_sec"] > 0, r
        assert r["verdict_parity"] is True, \
            f"{which}: streaming vs batch verdict drift: {r}"
        assert r["peak_retained_windows"] <= r["streams"] * r["window_slack"], \
            f"{which}: peak retained windows exceed streams x slack: {r}"
        # p99 is null exactly when the row saw no detections (a 0 would
        # read as "instant detection").
        p99 = r["p99_detect_latency_us"]
        if r["detections"] == 0:
            assert p99 is None, \
                f"{which}: p99 without detections must be null: {r}"
        else:
            assert isinstance(p99, int) and p99 >= 0, r
    bm = doc["estream_bounded_memory"]
    assert bm["events_10x"] >= 10 * bm["events"], bm
    assert bm["peak_retained_windows"] == bm["peak_retained_windows_10x"], \
        f"{which}: peak retained windows grew with stream length: {bm}"
    # Same invariance with the flight recorder on: its per-shard ring is
    # charged to the peak and must stay length-independent too.
    assert bm["recorder_peak_retained_windows"] == \
        bm["recorder_peak_retained_windows_10x"], \
        f"{which}: recorder-on peak grew with stream length: {bm}"
    assert bm["recorder_peak_retained_windows"] >= \
        bm["peak_retained_windows"], \
        f"{which}: recorder ring not counted into the peak: {bm}"

estream_check(d, "fresh")

# E-HOTPATH shape: per stream count {1, 4, 16} exactly the dense and
# legacy storage configs, measured on the same workload; report identity
# (verdict_parity) asserted in-bench at jobs {1, 2, 8}; legacy is its own
# speedup baseline (1.0 by construction).
def hotpath_check(doc, which):
    rows = doc["e_hotpath"]
    assert [(r["streams"], r["config"]) for r in rows] == \
        [(1, "dense"), (1, "legacy"), (4, "dense"), (4, "legacy"),
         (16, "dense"), (16, "legacy")], \
        (which, [(r["streams"], r["config"]) for r in rows])
    by = {}
    for r in rows:
        assert r["events"] > 0 and r["median_secs"] > 0, r
        assert r["sustained_ops_per_sec"] > 0, r
        assert r["verdict_parity"] is True, \
            f"{which}: dense vs legacy report drift: {r}"
        by[(r["streams"], r["config"])] = r
    for s in (1, 4, 16):
        dn, lg = by[(s, "dense")], by[(s, "legacy")]
        assert dn["events"] == lg["events"], (which, s, "workload mismatch")
        assert lg["speedup_vs_legacy"] == 1.0, lg
        ratio = lg["median_secs"] / dn["median_secs"]
        assert abs(dn["speedup_vs_legacy"] - ratio) < 0.05 * ratio, \
            f"{which}: speedup column inconsistent with medians at {s} streams"
    return by

fresh_hot = hotpath_check(d, "fresh")

# Headline claim: on the §5.2 blow-up instance, --prune=all shrinks
# memo_misses (== states explored) by at least 5x vs --prune=none.
e52 = by_case["e5.2-overcons"]
ratio = e52["none"]["memo_misses"] / max(e52["all"]["memo_misses"], 1)
assert ratio >= 5.0, f"e5.2 prune ratio regressed to {ratio:.1f}x (< 5x)"

# Non-regression against the committed receipt: a decided pruned row must
# not explore more states than the committed run plus 5% slack (decided
# rows are cap-independent, so fast/full receipts are comparable).
committed = json.load(open(sys.argv[2]))
if committed.get("schema") == "vermem-bench-vmc/v9":
    # The committed receipt must itself pass the tier, axiom, estream,
    # and hotpath shape checks — including the 90% healthy-sim frontline
    # gate, the 90% RA decision-rate gate, the streaming-vs-batch
    # verdict-parity flags, and the bounded-memory 10x-length
    # peak-retained-windows invariance.
    tier_check(committed, "committed")
    axiom_check(committed, "committed")
    estream_check(committed, "committed")
    comm_hot = hotpath_check(committed, "committed")
    # Headline gate (PR-9): the committed full-reps receipt shows the
    # dense structures >= 1.5x over the std-HashMap baseline at the
    # 4-stream serve point.
    headline = comm_hot[(4, "dense")]["speedup_vs_legacy"]
    assert headline >= 1.5, \
        f"committed 4-stream dense speedup regressed to {headline:.2f}x"
    # Throughput non-regression: E-HOTPATH measures the identical
    # workload under VERMEM_BENCH_FAST (only `reps` differs), so the
    # fresh dense rows must hold the committed throughput minus 10%
    # timing slack.
    for s in (1, 4, 16):
        fresh_ops = fresh_hot[(s, "dense")]["sustained_ops_per_sec"]
        comm_ops = comm_hot[(s, "dense")]["sustained_ops_per_sec"]
        assert fresh_ops >= comm_ops * 0.9, \
            (f"dense ingest throughput regressed at {s} streams: "
             f"{fresh_ops:.0f} < 90% of committed {comm_ops:.0f} ops/s")
    comm_by_case = {}
    for row in committed["prune_ablation"]:
        comm_by_case.setdefault(row["case"], {})[row["config"]] = row
    for case, rows in by_case.items():
        for cfg, row in rows.items():
            old = comm_by_case.get(case, {}).get(cfg)
            if old is None or row["verdict"] == "capped" \
               or old["verdict"] == "capped":
                continue
            limit = old["states"] * 1.05
            assert row["states"] <= limit, \
                f"{case}/{cfg}: states regressed {old['states']} -> {row['states']}"

obs = d["obs_overhead"]
assert obs["median_secs_disabled"] > 0 and obs["median_secs_enabled"] > 0, obs

# E-LIVE-OBS receipt: the flight recorder + rolling time-series run on the
# streaming workload with verdict/stats/tier identity asserted in-bench.
live = d["e_live_obs"]
assert live["streams"] >= 1 and live["events"] > 0, live
assert live["median_secs_off"] > 0 and live["median_secs_on"] > 0, live
assert live["verdict_identical"] is True, live
assert live["forensic_bundles"] >= 0, live

print(f"    ok ({len(d['par_verify'])} par cases, "
      f"{len(d['memo_ablation'])} memo rows, {len(prune)} prune rows, "
      f"{len(d['model_kernel'])} model-kernel rows, "
      f"{len(d['tier_ablation'])} tier rows, "
      f"{len(d['eaxiom'])} axiom rows "
      f"(RA frontline {d['eaxiom_ra_frontline']['decision_rate']:.0%}), "
      f"{len(d['estream'])} estream rows, "
      f"{len(d['e_hotpath'])} hotpath rows "
      f"(dense {fresh_hot[(4, 'dense')]['speedup_vs_legacy']:.2f}x at 4 "
      f"streams), "
      f"e5.2 prune ratio {ratio:.0f}x, "
      f"obs overhead {obs['enabled_overhead_pct']:+.2f}%, "
      f"live obs {live['enabled_overhead_pct']:+.2f}% "
      f"with {live['forensic_bundles']} bundle(s))")
EOF
rm -rf "$tmp"

echo "==> --trace-out emits a Perfetto-loadable Chrome trace"
tmp=$(mktemp -d)
target/release/vermem sim --verify --trace-out "$tmp/sim.trace.json" > /dev/null
python3 - "$tmp/sim.trace.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
ev = d["traceEvents"]
assert ev, "no trace events"
assert all(e["ph"] in ("X", "C") for e in ev), "unexpected phase"
assert all(e["pid"] == 1 and e["tid"] >= 1 for e in ev), "pid/tid shape"
ts = [e["ts"] for e in ev]
assert ts == sorted(ts), "ts must be monotonic"
names = {e["name"] for e in ev}
assert "sim.run" in names and "verify.execution" in names, names
durs = [e for e in ev if e["ph"] == "X"]
assert all("dur" in e and e["dur"] >= 0 for e in durs), "X events need dur"
print(f"    ok ({len(ev)} events, {len(names)} distinct names)")
EOF
rm -rf "$tmp"

echo "==> vermem serve: streaming engine smoke (healthy + fault-injected)"
out=$(target/release/vermem serve --streams 2 --instrs 60 --window 64 --jobs 1)
grep -q "# serve: 2 stream(s), 0 incoherent" <<<"$out" \
    || { echo "serve healthy run not coherent:" >&2; echo "$out" >&2; exit 1; }
out=$(target/release/vermem serve --streams 3 --instrs 60 --fault --window 32)
grep -q "VIOLATION at address" <<<"$out" \
    || { echo "serve fault run surfaced no violation:" >&2; echo "$out" >&2; exit 1; }
echo "    ok"

echo "==> vermem serve --obs-addr: rust-test fetch on an ephemeral port (no curl)"
# The introspection-server suite binds 127.0.0.1:0 and fetches /metrics,
# /healthz and /snapshot.json over a raw TcpStream from the test itself.
cargo test -q --offline -p vermem-cli obs_server:: > /dev/null
echo "    ok"

echo "==> vermem serve --obs-addr: live Prometheus scrape shape check"
tmp=$(mktemp -d)
port=47613
# ~3.5s wall: ~1.3s input synthesis before the bind, then ~2.2s of live
# verification the scraper races against (it polls the port from t=0).
target/release/vermem serve --streams 8 --instrs 800000 --jobs 1 \
    --obs-addr "127.0.0.1:$port" > "$tmp/serve.out" &
serve_pid=$!
python3 - "$port" <<'EOF'
import json, re, socket, sys, time

port = int(sys.argv[1])

def fetch(path):
    for _ in range(400):
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=1)
            break
        except OSError:
            time.sleep(0.025)
    else:
        sys.exit("obs server never accepted a connection")
    s.sendall(f"GET {path} HTTP/1.1\r\nHost: v\r\nConnection: close\r\n\r\n"
              .encode())
    data = b""
    while chunk := s.recv(4096):
        data += chunk
    s.close()
    head, _, body = data.partition(b"\r\n\r\n")
    assert b" 200 OK" in head.splitlines()[0], head
    return body.decode()

metrics = fetch("/metrics")
# Prometheus text format 0.0.4: every family has a `# TYPE` comment and
# every sample line is `name[{le="..."}] value`.
families = set()
for line in metrics.splitlines():
    if line.startswith("# TYPE "):
        families.add(line.split()[2])
        continue
    assert not line.startswith("#"), repr(line)
    m = re.match(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?\d+(\.\d+)?)$', line)
    assert m, f"bad metrics line: {line!r}"
    base = re.sub(r'_(bucket|sum|count)$', '', m.group(1))
    assert m.group(1) in families or base in families, \
        f"sample without TYPE comment: {line!r}"
assert "vermem_serve_streams" in families, sorted(families)
assert "vermem_serve_events_total" in families, sorted(families)
assert "vermem_serve_chunk_ingest_us" in families, sorted(families)

health = json.loads(fetch("/healthz"))
assert health["status"] in ("ok", "incoherent"), health
assert len(health["streams"]) == 8, health
for row in health["streams"]:
    assert set(row) == {"name", "events", "detections", "verdict", "done"}, row

print(f"    ok ({len(families)} metric families, "
      f"{sum(r['done'] for r in health['streams'])}/8 streams done at scrape)")
EOF
wait "$serve_pid"
grep -q "# obs: serving on 127.0.0.1:$port" "$tmp/serve.out" \
    || { echo "serve printed no '# obs:' line:" >&2; cat "$tmp/serve.out" >&2; exit 1; }
grep -q "# serve: 8 stream(s)" "$tmp/serve.out" \
    || { echo "serve aggregate line missing:" >&2; cat "$tmp/serve.out" >&2; exit 1; }
rm -rf "$tmp"

echo "==> vermem serve --forensics: flight-recorder bundles are valid JSONL"
tmp=$(mktemp -d)
out=$(target/release/vermem serve --streams 3 --instrs 60 --fault --window 32 \
    --forensics "$tmp/forensics")
grep -q "VIOLATION at address" <<<"$out" \
    || { echo "forensics fault run surfaced no violation:" >&2; echo "$out" >&2; exit 1; }
python3 - "$tmp/forensics" <<'EOF'
import json, os, sys
d = sys.argv[1]
files = sorted(os.listdir(d)) if os.path.isdir(d) else []
assert files, "no forensic JSONL files written"
bundles = 0
for name in files:
    assert name.endswith(".forensics.jsonl"), name
    for line in open(os.path.join(d, name)):
        b = json.loads(line)
        assert b["schema"] == "vermem-forensic/v1", b["schema"]
        assert b["cause"] in ("rmw-mismatch", "window-closed", "end-of-stream")
        assert b["detected_at"] >= b["issued_at"] >= 0, b
        assert b["latency_us"] >= 0 and isinstance(b["window_ops"], list), b
        assert b["tier"] in ("frontline", "exact", None), b
        bundles += 1
print(f"    ok ({bundles} bundle(s) across {len(files)} stream file(s))")
EOF
rm -rf "$tmp"

echo "==> all checks passed"
