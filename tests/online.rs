//! The online checker against real machine event streams: it must agree
//! with the offline §5.2 write-order verification on every run — healthy,
//! TSO, directory-based, or fault-injected.

use vermem::coherence::{solve_with_write_order, OnlineVerifier};
use vermem::sim::{
    random_program, shared_counter, DirectoryConfig, DirectoryMachine, FaultKind, FaultPlan,
    Machine, MachineConfig, WorkloadConfig,
};

fn offline_clean(cap: &vermem::sim::CapturedExecution) -> bool {
    cap.write_order
        .iter()
        .all(|(addr, order)| solve_with_write_order(&cap.trace, *addr, order).is_coherent())
}

fn online_clean(cap: &vermem::sim::CapturedExecution) -> bool {
    let mut v = OnlineVerifier::new();
    for &(proc, op) in &cap.event_log {
        v.observe(proc, op);
    }
    v.finish().is_empty()
}

fn workload(seed: u64) -> vermem::sim::Program {
    random_program(&WorkloadConfig {
        cpus: 4,
        instrs_per_cpu: 40,
        addrs: 3,
        write_fraction: 0.45,
        rmw_fraction: 0.1,
        seed,
    })
}

#[test]
fn online_accepts_healthy_snooping_runs() {
    for seed in 0..25 {
        let cap = Machine::run(
            &workload(seed),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(online_clean(&cap), "false positive online (seed {seed})");
    }
}

#[test]
fn online_accepts_healthy_tso_runs() {
    for seed in 0..25 {
        let cap = Machine::run(
            &workload(100 + seed),
            MachineConfig {
                store_buffers: true,
                seed,
                ..Default::default()
            },
        );
        assert!(
            online_clean(&cap),
            "false positive online under TSO (seed {seed})"
        );
    }
}

#[test]
fn online_accepts_healthy_directory_runs() {
    for seed in 0..25 {
        let cap = DirectoryMachine::run(
            &workload(200 + seed),
            DirectoryConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(
            online_clean(&cap),
            "false positive online on directory machine (seed {seed})"
        );
    }
}

#[test]
fn online_agrees_with_offline_on_faulty_runs() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xF00D,
        },
        FaultKind::DropInvalidation { victim_cpu: 2 },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
    ];
    let mut detections = 0;
    for (i, kind) in kinds.into_iter().enumerate() {
        for seed in 0..20 {
            let program = if i % 2 == 0 {
                workload(300 + seed)
            } else {
                shared_counter(3, 8)
            };
            let cap = Machine::run(
                &program,
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 10 }],
                    ..Default::default()
                },
            );
            let offline = offline_clean(&cap);
            let online = online_clean(&cap);
            assert_eq!(
                offline, online,
                "online/offline divergence: {kind:?}, seed {seed}"
            );
            if !online {
                detections += 1;
            }
        }
    }
    assert!(detections > 0, "no fault was ever detected");
}

#[test]
fn online_detection_is_prompt_for_rmw_chains() {
    // On the counter workload, a stale RMW is flagged at the very event
    // that commits it (RmwMismatch), not at end of stream.
    for seed in 0..40 {
        let cap = Machine::run(
            &shared_counter(3, 8),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::DropInvalidation { victim_cpu: 1 },
                    at_step: 6,
                }],
                ..Default::default()
            },
        );
        let mut v = OnlineVerifier::new();
        let mut first_hit = None;
        for (i, &(proc, op)) in cap.event_log.iter().enumerate() {
            if v.observe(proc, op) > 0 && first_hit.is_none() {
                first_hit = Some(i);
            }
        }
        let total = cap.event_log.len();
        if let Some(at) = first_hit {
            assert!(at < total, "detected within the stream");
            return; // one prompt detection is enough
        }
    }
    panic!("no seed produced a mid-stream detection");
}

#[test]
fn online_matches_offline_on_generated_traces_with_witness_order() {
    // Feed generator witnesses through the online checker: the witness
    // order is a valid serialization, so the stream must be clean.
    use vermem::trace::gen::{gen_sc_trace, GenConfig};
    for seed in 0..20 {
        let (trace, witness) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 60,
            addrs: 2,
            seed,
            ..Default::default()
        });
        let mut v = OnlineVerifier::new();
        for &r in witness.refs() {
            let op = trace.op(r).expect("witness ref");
            v.observe(r.proc, op);
        }
        assert!(
            v.finish().is_empty(),
            "witness stream must be clean (seed {seed})"
        );
    }
}
