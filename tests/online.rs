//! The online checker against real machine event streams: it must agree
//! with the offline §5.2 write-order verification on every run — healthy,
//! TSO, directory-based, or fault-injected.

use vermem::coherence::{solve_with_write_order, OnlineVerifier};
use vermem::sim::{
    random_program, shared_counter, DirectoryConfig, DirectoryMachine, FaultKind, FaultPlan,
    Machine, MachineConfig, WorkloadConfig,
};

fn offline_clean(cap: &vermem::sim::CapturedExecution) -> bool {
    cap.write_order
        .iter()
        .all(|(addr, order)| solve_with_write_order(&cap.trace, *addr, order).is_coherent())
}

fn online_clean(cap: &vermem::sim::CapturedExecution) -> bool {
    let mut v = OnlineVerifier::new();
    for &(proc, op) in &cap.event_log {
        v.observe(proc, op);
    }
    v.finish().is_empty()
}

fn workload(seed: u64) -> vermem::sim::Program {
    random_program(&WorkloadConfig {
        cpus: 4,
        instrs_per_cpu: 40,
        addrs: 3,
        write_fraction: 0.45,
        rmw_fraction: 0.1,
        seed,
    })
}

#[test]
fn online_accepts_healthy_snooping_runs() {
    for seed in 0..25 {
        let cap = Machine::run(
            &workload(seed),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(online_clean(&cap), "false positive online (seed {seed})");
    }
}

#[test]
fn online_accepts_healthy_tso_runs() {
    for seed in 0..25 {
        let cap = Machine::run(
            &workload(100 + seed),
            MachineConfig {
                store_buffers: true,
                seed,
                ..Default::default()
            },
        );
        assert!(
            online_clean(&cap),
            "false positive online under TSO (seed {seed})"
        );
    }
}

#[test]
fn online_accepts_healthy_directory_runs() {
    for seed in 0..25 {
        let cap = DirectoryMachine::run(
            &workload(200 + seed),
            DirectoryConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(
            online_clean(&cap),
            "false positive online on directory machine (seed {seed})"
        );
    }
}

#[test]
fn online_agrees_with_offline_on_faulty_runs() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xF00D,
        },
        FaultKind::DropInvalidation { victim_cpu: 2 },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
    ];
    let mut detections = 0;
    for (i, kind) in kinds.into_iter().enumerate() {
        for seed in 0..20 {
            let program = if i % 2 == 0 {
                workload(300 + seed)
            } else {
                shared_counter(3, 8)
            };
            let cap = Machine::run(
                &program,
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 10 }],
                    ..Default::default()
                },
            );
            let offline = offline_clean(&cap);
            let online = online_clean(&cap);
            assert_eq!(
                offline, online,
                "online/offline divergence: {kind:?}, seed {seed}"
            );
            if !online {
                detections += 1;
            }
        }
    }
    assert!(detections > 0, "no fault was ever detected");
}

#[test]
fn online_detection_is_prompt_for_rmw_chains() {
    // On the counter workload, a stale RMW is flagged at the very event
    // that commits it (RmwMismatch), not at end of stream.
    for seed in 0..40 {
        let cap = Machine::run(
            &shared_counter(3, 8),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::DropInvalidation { victim_cpu: 1 },
                    at_step: 6,
                }],
                ..Default::default()
            },
        );
        let mut v = OnlineVerifier::new();
        let mut first_hit = None;
        for (i, &(proc, op)) in cap.event_log.iter().enumerate() {
            if v.observe(proc, op) > 0 && first_hit.is_none() {
                first_hit = Some(i);
            }
        }
        let total = cap.event_log.len();
        if let Some(at) = first_hit {
            assert!(at < total, "detected within the stream");
            return; // one prompt detection is enough
        }
    }
    panic!("no seed produced a mid-stream detection");
}

#[test]
fn online_matches_offline_on_generated_traces_with_witness_order() {
    // Feed generator witnesses through the online checker: the witness
    // order is a valid serialization, so the stream must be clean.
    use vermem::trace::gen::{gen_sc_trace, GenConfig};
    for seed in 0..20 {
        let (trace, witness) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 60,
            addrs: 2,
            seed,
            ..Default::default()
        });
        let mut v = OnlineVerifier::new();
        for &r in witness.refs() {
            let op = trace.op(r).expect("witness ref");
            v.observe(r.proc, op);
        }
        assert!(
            v.finish().is_empty(),
            "witness stream must be clean (seed {seed})"
        );
    }
}

// --- Property tests: online ≡ §5.2 write-order verification ---------------
//
// The module docs of `coherence::online` claim the streaming verdict is
// identical to `solve_with_write_order` run offline. The two properties
// below make that claim checked code on the adversarial families: RMW-heavy
// streams (every RMW binds to the immediately preceding commit) and
// deferred-read-heavy streams (reads issued long before their serving
// writes commit, exercising the pending-queue machinery).

use std::cell::Cell;
use std::collections::BTreeMap;
use vermem::trace::{Op, OpRef, ProcId, Trace, TraceBuilder, Value};
use vermem::util::prop::PropConfig;
use vermem::util::rng::StdRng;
use vermem::util::{prop_assert, prop_assert_eq, prop_check};

/// Re-serialize `trace` with one read's value flipped (a coherence bug the
/// checkers must agree on), leaving op identities untouched.
fn corrupt_one_read(trace: &Trace, rng: &mut StdRng) -> Trace {
    let reads: Vec<OpRef> = trace
        .iter_ops()
        .filter(|(_, op)| matches!(op, Op::Read { .. }))
        .map(|(r, _)| r)
        .collect();
    if reads.is_empty() {
        return trace.clone();
    }
    let target = reads[rng.gen_range(0..reads.len())];
    let mut b = TraceBuilder::new();
    for (p, h) in trace.histories().iter().enumerate() {
        let ops: Vec<Op> = h
            .iter()
            .enumerate()
            .map(|(i, op)| {
                if OpRef::new(p as u16, i as u32) == target {
                    if let Op::Read { addr, value } = op {
                        return Op::Read {
                            addr,
                            value: Value(value.0 ^ 0xDEAD),
                        };
                    }
                }
                op
            })
            .collect();
        b = b.proc(ops);
    }
    for (&a, &v) in trace.initial_values() {
        b = b.initial(a, v);
    }
    for (&a, &v) in trace.final_values() {
        b = b.final_value(a, v);
    }
    b.build()
}

/// Merge `trace`'s program orders into one event stream that respects the
/// supplied per-address write orders but emits every *read* as early as
/// possible — the deferral-maximizing interleaving. Returns the stream and
/// the number of reads emitted before their serving write committed.
/// Case shape for the deferred-read property: generated trace, per-address
/// write order, merged stream, and the count of deferral-forcing reads.
type DeferredCase = (
    Trace,
    BTreeMap<vermem::trace::Addr, Vec<OpRef>>,
    Vec<(ProcId, Op)>,
    usize,
);

fn deferred_read_heavy_stream(
    trace: &Trace,
    order: &BTreeMap<vermem::trace::Addr, Vec<OpRef>>,
    rng: &mut StdRng,
) -> (Vec<(ProcId, Op)>, usize) {
    let procs = trace.num_procs();
    let mut next = vec![0usize; procs];
    let mut committed: BTreeMap<vermem::trace::Addr, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(trace.num_ops());
    let mut early_reads = 0usize;
    loop {
        let mut read_cands: Vec<usize> = Vec::new();
        let mut write_cands: Vec<usize> = Vec::new();
        for (p, &np) in next.iter().enumerate() {
            let Some(op) = trace.histories()[p].op(np) else {
                continue;
            };
            if matches!(op, Op::Read { .. }) {
                read_cands.push(p);
            } else {
                let addr = op.addr();
                let k = committed.get(&addr).copied().unwrap_or(0);
                if order.get(&addr).and_then(|o| o.get(k)) == Some(&OpRef::new(p as u16, np as u32))
                {
                    write_cands.push(p);
                }
            }
        }
        let p = if !read_cands.is_empty() {
            read_cands[rng.gen_range(0..read_cands.len())]
        } else if !write_cands.is_empty() {
            write_cands[rng.gen_range(0..write_cands.len())]
        } else {
            break;
        };
        let op = trace.histories()[p].op(next[p]).expect("candidate");
        next[p] += 1;
        if let Op::Read { addr, value } = op {
            // "Early" = the observed value has not been committed yet (and
            // is not the initial value): the online checker must defer it.
            let k = committed.get(&addr).copied().unwrap_or(0);
            let already = value == trace.initial(addr)
                || order.get(&addr).is_some_and(|o| {
                    o[..k]
                        .iter()
                        .any(|&r| trace.op(r).and_then(|w| w.written_value()) == Some(value))
                });
            if !already {
                early_reads += 1;
            }
        } else {
            *committed.entry(op.addr()).or_insert(0) += 1;
        }
        out.push((ProcId(p as u16), op));
    }
    (out, early_reads)
}

/// `true` iff every address verifies coherent under the supplied write
/// order (the offline §5.2 decision).
fn write_order_clean(trace: &Trace, order: &BTreeMap<vermem::trace::Addr, Vec<OpRef>>) -> bool {
    trace.addresses().into_iter().all(|addr| {
        let empty = Vec::new();
        let o = order.get(&addr).unwrap_or(&empty);
        solve_with_write_order(trace, addr, o).is_coherent()
    })
}

#[test]
fn prop_online_equals_write_order_on_rmw_heavy_captures() {
    // RMW-heavy machine runs, healthy and fault-injected: the online
    // verdict must equal the offline write-order-supplied verdict.
    let incoherent_seen = Cell::new(0usize);
    prop_check!(
        PropConfig::with_cases(48),
        |rng: &mut StdRng, _size| {
            let seed = rng.gen_range(0..1_000_000u64);
            let faulty = rng.gen_bool(0.5);
            (seed, faulty)
        },
        |case: &(u64, bool)| {
            let (seed, faulty) = *case;
            let program = random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 30,
                addrs: 3,
                write_fraction: 0.2,
                rmw_fraction: 0.6,
                seed,
            });
            let faults = if faulty {
                vec![FaultPlan {
                    kind: FaultKind::DropInvalidation {
                        victim_cpu: (seed % 4) as usize,
                    },
                    at_step: 6 + (seed % 10),
                }]
            } else {
                Vec::new()
            };
            let cap = Machine::run(
                &program,
                MachineConfig {
                    seed,
                    faults,
                    ..Default::default()
                },
            );
            let offline = write_order_clean(&cap.trace, &cap.write_order);
            let online = online_clean(&cap);
            prop_assert_eq!(online, offline);
            if !offline {
                incoherent_seen.set(incoherent_seen.get() + 1);
            }
            Ok(())
        }
    );
    assert!(
        incoherent_seen.get() > 0,
        "no RMW-heavy case exercised the incoherent direction"
    );
}

#[test]
fn prop_online_equals_write_order_on_deferred_read_heavy_streams() {
    // Witness-ordered generated traces re-merged so reads arrive as early
    // as legally possible (maximal deferral), sometimes with one read
    // corrupted: online and offline §5.2 verdicts must still coincide.
    let early_total = Cell::new(0usize);
    let incoherent_seen = Cell::new(0usize);
    prop_check!(
        PropConfig::with_cases(48),
        |rng: &mut StdRng, _size| {
            let (trace, witness) =
                vermem::trace::gen::gen_sc_trace(&vermem::trace::gen::GenConfig {
                    procs: 4,
                    total_ops: 80,
                    addrs: 3,
                    value_reuse: 0.4,
                    seed: rng.gen_range(0..1_000_000u64),
                    ..Default::default()
                });
            // Per-address write order = the witness's commit order.
            let mut order: BTreeMap<vermem::trace::Addr, Vec<OpRef>> = BTreeMap::new();
            for &r in witness.refs() {
                let op = trace.op(r).expect("witness ref");
                if op.written_value().is_some() {
                    order.entry(op.addr()).or_default().push(r);
                }
            }
            let trace = if rng.gen_bool(0.4) {
                corrupt_one_read(&trace, rng)
            } else {
                trace
            };
            let (stream, early) = deferred_read_heavy_stream(&trace, &order, rng);
            (trace, order, stream, early)
        },
        |case: &DeferredCase| {
            let (trace, order, stream, early) = case;
            prop_assert!(
                stream.len() == trace.num_ops(),
                "merge must emit every op exactly once"
            );
            let mut v = OnlineVerifier::new();
            for (&a, &val) in trace.initial_values() {
                v.set_initial(a, val);
            }
            for &(proc, op) in stream {
                v.observe(proc, op);
            }
            let online = v.finish().is_empty();
            let offline = write_order_clean(trace, order);
            prop_assert_eq!(online, offline);
            early_total.set(early_total.get() + early);
            if !offline {
                incoherent_seen.set(incoherent_seen.get() + 1);
            }
            Ok(())
        }
    );
    assert!(
        early_total.get() > 0,
        "no case actually deferred a read — the family is mislabeled"
    );
    assert!(
        incoherent_seen.get() > 0,
        "no corrupted case exercised the incoherent direction"
    );
}
