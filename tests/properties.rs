//! Workspace-level property tests: the invariants that tie the crates
//! together, fuzzed with the in-tree `vermem_util::prop` harness.

use vermem::coherence::{
    solve_backtracking, solve_sat, verify, SearchConfig, Strategy as VmcStrategy, VmcVerifier,
};
use vermem::trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
use vermem::trace::{check_coherent_schedule, check_sc_schedule, Addr, Op, Trace, TraceBuilder};
use vermem::util::prop::PropConfig;
use vermem::util::rng::StdRng;
use vermem::util::{prop_assert, prop_assert_eq, prop_check};

/// Up to 4 processes of up to 4 ops over a small value universe, all at
/// address zero.
fn arb_single_address_trace(rng: &mut StdRng, size: usize) -> Trace {
    let procs = rng.gen_range(1..=4usize);
    let max_ops = size.min(4);
    let mut b = TraceBuilder::new();
    for _ in 0..procs {
        let len = rng.gen_range(0..=max_ops);
        let ops: Vec<Op> = (0..len)
            .map(|_| {
                let kind = rng.gen_range(0..3u8);
                let a = rng.gen_range(0..4u64);
                let bb = rng.gen_range(0..4u64);
                match kind {
                    0 => Op::r(a),
                    1 => Op::w(a),
                    _ => Op::rw(a, bb),
                }
            })
            .collect();
        b = b.proc(ops);
    }
    b.build()
}

#[test]
fn solvers_agree_and_witnesses_validate() {
    // The three general-purpose solvers agree, and any witness validates.
    prop_check!(
        PropConfig::with_cases(128),
        arb_single_address_trace,
        |trace: &Trace| {
            let auto = verify(trace, Addr::ZERO);
            let bt = solve_backtracking(trace, Addr::ZERO, &SearchConfig::default());
            let sat = solve_sat(trace, Addr::ZERO);
            prop_assert_eq!(auto.is_coherent(), bt.is_coherent());
            prop_assert_eq!(auto.is_coherent(), sat.is_coherent());
            for v in [&auto, &bt, &sat] {
                if let Some(s) = v.schedule() {
                    prop_assert!(check_coherent_schedule(trace, Addr::ZERO, s).is_ok());
                }
            }
            Ok(())
        }
    );
}

#[test]
fn generated_sc_traces_always_verify() {
    // Generated SC traces verify coherent at every address, SC overall,
    // and their witness schedules validate.
    prop_check!(
        PropConfig::with_cases(128),
        |rng: &mut StdRng, _size| {
            (
                rng.gen_range(0..5000u64),
                rng.gen_range(1..5usize),
                rng.gen_range(1..40usize),
            )
        },
        |&(seed, procs, ops): &(u64, usize, usize)| {
            let cfg = GenConfig {
                procs,
                total_ops: ops,
                addrs: 2,
                seed,
                ..Default::default()
            };
            let (trace, witness) = gen_sc_trace(&cfg);
            prop_assert!(check_sc_schedule(&trace, &witness).is_ok());
            prop_assert!(vermem::coherence::verify_execution(&trace).is_coherent());
            Ok(())
        }
    );
}

#[test]
fn guaranteed_injections_always_detected() {
    prop_check!(
        PropConfig::with_cases(128),
        |rng: &mut StdRng, _size| rng.gen_range(0..2000u64),
        |&seed: &u64| {
            let cfg = GenConfig::single_address(3, 24, seed);
            let (trace, _) = gen_sc_trace(&cfg);
            for kind in [ViolationKind::CorruptReadValue, ViolationKind::LostWrite] {
                if let Some((mutated, inj)) = inject_violation(&trace, kind, seed) {
                    if inj.guaranteed {
                        prop_assert!(
                            !verify(&mutated, Addr::ZERO).is_coherent(),
                            "guaranteed {:?} not detected",
                            kind
                        );
                    }
                }
            }
            Ok(())
        }
    );
}

#[test]
fn maybe_injections_keep_witnesses_sound() {
    // Non-guaranteed injections never produce *invalid* verdicts: if the
    // verifier says coherent, the witness must check out.
    prop_check!(
        PropConfig::with_cases(128),
        |rng: &mut StdRng, _size| rng.gen_range(0..1000u64),
        |&seed: &u64| {
            let cfg = GenConfig::single_address(3, 20, seed);
            let (trace, _) = gen_sc_trace(&cfg);
            for kind in [ViolationKind::StaleRead, ViolationKind::ReorderAdjacent] {
                if let Some((mutated, _)) = inject_violation(&trace, kind, seed) {
                    if let Some(s) = verify(&mutated, Addr::ZERO).schedule() {
                        prop_assert!(check_coherent_schedule(&mutated, Addr::ZERO, s).is_ok());
                    }
                }
            }
            Ok(())
        }
    );
}

#[test]
fn formats_round_trip() {
    // Text and binary formats round-trip arbitrary traces.
    prop_check!(
        PropConfig::with_cases(128),
        arb_single_address_trace,
        |trace: &Trace| {
            let text = vermem::trace::fmt::format_trace(trace);
            prop_assert_eq!(&vermem::trace::fmt::parse_trace(&text).unwrap(), trace);
            let bytes = vermem::trace::binary::encode_trace(trace);
            prop_assert_eq!(&vermem::trace::binary::decode_trace(&bytes).unwrap(), trace);
            Ok(())
        }
    );
}

#[test]
fn strategy_agreement_per_address() {
    // Forcing the SAT strategy agrees with auto on multi-address traces
    // address by address.
    prop_check!(
        PropConfig::with_cases(128),
        |rng: &mut StdRng, _size| rng.gen_range(0..300u64),
        |&seed: &u64| {
            let cfg = GenConfig {
                procs: 3,
                total_ops: 18,
                addrs: 2,
                seed,
                ..Default::default()
            };
            let (trace, _) = gen_sc_trace(&cfg);
            let sat = VmcVerifier {
                strategy: VmcStrategy::Sat,
                ..Default::default()
            };
            for addr in trace.addresses() {
                prop_assert!(sat.verify(&trace, addr).is_coherent());
            }
            Ok(())
        }
    );
}

#[test]
fn reduction_encoding_round_trip() {
    // The SAT→VMC reduction and the VMC→SAT encoding compose to the
    // identity on satisfiability (fuzzed lightly — each round trip is
    // expensive).
    prop_check!(
        PropConfig::with_cases(12),
        |rng: &mut StdRng, _size| rng.gen_range(0..1000u64),
        |&seed: &u64| {
            let cfg = vermem::sat::random::RandomSatConfig {
                num_vars: 3,
                num_clauses: 5,
                k: 2,
                seed,
            };
            let f = vermem::sat::random::gen_random_ksat(&cfg);
            let direct = vermem::sat::solve_cdcl(&f).is_sat();
            let red = vermem::reductions::reduce_sat_to_vmc(&f);
            let enc = vermem::coherence::encode_vmc(&red.trace, Addr::ZERO);
            let via = matches!(
                vermem::sat::solve_cdcl(enc.cnf()),
                vermem::sat::SatResult::Sat(_)
            );
            prop_assert_eq!(direct, via);
            Ok(())
        }
    );
}
