//! Workspace-level property tests: the invariants that tie the crates
//! together, fuzzed with proptest.

use proptest::prelude::*;
use vermem::coherence::{
    solve_backtracking, solve_sat, verify, SearchConfig, Strategy as VmcStrategy, VmcVerifier,
};
use vermem::trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
use vermem::trace::{
    check_coherent_schedule, check_sc_schedule, Addr, Op, Trace, TraceBuilder,
};

fn arb_single_address_trace() -> impl Strategy<Value = Trace> {
    // Up to 4 processes of up to 4 ops over a small value universe.
    let op = (0u8..3, 0u64..4, 0u64..4).prop_map(|(kind, a, b)| match kind {
        0 => Op::r(a),
        1 => Op::w(a),
        _ => Op::rw(a, b),
    });
    let history = prop::collection::vec(op, 0..=4);
    prop::collection::vec(history, 1..=4).prop_map(|hists| {
        let mut b = TraceBuilder::new();
        for h in hists {
            b = b.proc(h);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The three general-purpose solvers agree, and any witness validates.
    #[test]
    fn solvers_agree_and_witnesses_validate(trace in arb_single_address_trace()) {
        let auto = verify(&trace, Addr::ZERO);
        let bt = solve_backtracking(&trace, Addr::ZERO, &SearchConfig::default());
        let sat = solve_sat(&trace, Addr::ZERO);
        prop_assert_eq!(auto.is_coherent(), bt.is_coherent());
        prop_assert_eq!(auto.is_coherent(), sat.is_coherent());
        for v in [&auto, &bt, &sat] {
            if let Some(s) = v.schedule() {
                prop_assert!(check_coherent_schedule(&trace, Addr::ZERO, s).is_ok());
            }
        }
    }

    // Generated SC traces verify coherent at every address, SC overall,
    // and their witness schedules validate.
    #[test]
    fn generated_sc_traces_always_verify(seed in 0u64..5000, procs in 1usize..5, ops in 1usize..40) {
        let cfg = GenConfig { procs, total_ops: ops, addrs: 2, seed, ..Default::default() };
        let (trace, witness) = gen_sc_trace(&cfg);
        prop_assert!(check_sc_schedule(&trace, &witness).is_ok());
        prop_assert!(vermem::coherence::verify_execution(&trace).is_coherent());
    }

    // Guaranteed-violation injections are always detected.
    #[test]
    fn guaranteed_injections_always_detected(seed in 0u64..2000) {
        let cfg = GenConfig::single_address(3, 24, seed);
        let (trace, _) = gen_sc_trace(&cfg);
        for kind in [ViolationKind::CorruptReadValue, ViolationKind::LostWrite] {
            if let Some((mutated, inj)) = inject_violation(&trace, kind, seed) {
                if inj.guaranteed {
                    prop_assert!(
                        !verify(&mutated, Addr::ZERO).is_coherent(),
                        "guaranteed {kind:?} not detected"
                    );
                }
            }
        }
    }

    // Non-guaranteed injections never produce *invalid* verdicts: if the
    // verifier says coherent, the witness must check out.
    #[test]
    fn maybe_injections_keep_witnesses_sound(seed in 0u64..1000) {
        let cfg = GenConfig::single_address(3, 20, seed);
        let (trace, _) = gen_sc_trace(&cfg);
        for kind in [ViolationKind::StaleRead, ViolationKind::ReorderAdjacent] {
            if let Some((mutated, _)) = inject_violation(&trace, kind, seed) {
                if let Some(s) = verify(&mutated, Addr::ZERO).schedule() {
                    prop_assert!(check_coherent_schedule(&mutated, Addr::ZERO, s).is_ok());
                }
            }
        }
    }

    // Text and binary formats round-trip arbitrary traces.
    #[test]
    fn formats_round_trip(trace in arb_single_address_trace()) {
        let text = vermem::trace::fmt::format_trace(&trace);
        prop_assert_eq!(&vermem::trace::fmt::parse_trace(&text).unwrap(), &trace);
        let bytes = vermem::trace::binary::encode_trace(&trace);
        prop_assert_eq!(&vermem::trace::binary::decode_trace(&bytes).unwrap(), &trace);
    }

    // Forcing the SAT strategy agrees with auto on multi-address traces
    // address by address.
    #[test]
    fn strategy_agreement_per_address(seed in 0u64..300) {
        let cfg = GenConfig { procs: 3, total_ops: 18, addrs: 2, seed, ..Default::default() };
        let (trace, _) = gen_sc_trace(&cfg);
        let sat = VmcVerifier { strategy: VmcStrategy::Sat, ..Default::default() };
        for addr in trace.addresses() {
            prop_assert!(sat.verify(&trace, addr).is_coherent());
        }
    }
}

// The SAT→VMC reduction and the VMC→SAT encoding compose to the identity
// on satisfiability (fuzzed lightly — each round trip is expensive).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reduction_encoding_round_trip(seed in 0u64..1000) {
        let cfg = vermem::sat::random::RandomSatConfig {
            num_vars: 3,
            num_clauses: 5,
            k: 2,
            seed,
        };
        let f = vermem::sat::random::gen_random_ksat(&cfg);
        let direct = vermem::sat::solve_cdcl(&f).is_sat();
        let red = vermem::reductions::reduce_sat_to_vmc(&f);
        let enc = vermem::coherence::encode_vmc(&red.trace, Addr::ZERO);
        let via = matches!(
            vermem::sat::solve_cdcl(enc.cnf()),
            vermem::sat::SatResult::Sat(_)
        );
        prop_assert_eq!(direct, via);
    }
}
