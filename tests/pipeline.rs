//! Cross-crate integration: simulator → trace → coherence → consistency.

use vermem::coherence::{verify_execution, ExecutionVerdict};
use vermem::consistency::{
    merge_coherent_schedules, solve_sc_backtracking, verify_vscc, KernelConfig, MemoryModel,
    MergeOutcome, SettledBy,
};
use vermem::sim::{
    ping_pong, producer_consumer, random_program, shared_counter, Machine, MachineConfig,
    WorkloadConfig,
};
use vermem::trace::{check_coherent_schedule, check_sc_schedule};

#[test]
fn full_pipeline_on_random_workloads() {
    for seed in 0..10 {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 25,
            addrs: 3,
            write_fraction: 0.4,
            rmw_fraction: 0.15,
            seed,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed,
                ..Default::default()
            },
        );

        // Coherence with witnesses.
        let ExecutionVerdict::Coherent(schedules) = verify_execution(&cap.trace) else {
            panic!("healthy machine produced incoherent trace (seed {seed})");
        };
        for (&addr, s) in &schedules {
            check_coherent_schedule(&cap.trace, addr, s).unwrap();
        }

        // SC (the machine without store buffers is SC).
        let sc = solve_sc_backtracking(&cap.trace, &KernelConfig::default());
        check_sc_schedule(&cap.trace, sc.schedule().expect("SC machine")).unwrap();

        // The coherent witnesses merge into an SC schedule or the exact
        // solver already proved SC; the VSCC pipeline agrees.
        let report = verify_vscc(&cap.trace);
        assert!(report.verdict.is_consistent(), "seed {seed}");
    }
}

#[test]
fn producer_consumer_workload_is_sc() {
    let program = producer_consumer(2, 4);
    let cap = Machine::run(
        &program,
        MachineConfig {
            seed: 3,
            ..Default::default()
        },
    );
    let report = verify_vscc(&cap.trace);
    assert!(report.verdict.is_consistent());
    assert!(report.coherence.is_ok());
}

#[test]
fn shared_counter_increments_serialize() {
    let cap = Machine::run(&shared_counter(4, 6), MachineConfig::default());
    // All-RMW address: the dispatcher uses an RMW fast path or search; the
    // chain of 24 increments must verify and end at 24.
    assert!(verify_execution(&cap.trace).is_coherent());
    assert_eq!(
        cap.final_memory.get(&vermem::trace::Addr(0)),
        Some(&vermem::trace::Value(24))
    );
}

#[test]
fn tso_machine_traces_satisfy_tso_but_may_violate_sc() {
    let mut sc_violations = 0;
    for seed in 0..20 {
        let program = random_program(&WorkloadConfig {
            cpus: 3,
            instrs_per_cpu: 20,
            addrs: 2,
            write_fraction: 0.5,
            rmw_fraction: 0.0,
            seed,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                store_buffers: true,
                drain_probability: 0.15,
                seed,
                ..Default::default()
            },
        );
        let tso = vermem::consistency::solve_model_sat(&cap.trace, MemoryModel::Tso);
        assert!(
            tso.is_consistent(),
            "TSO machine must satisfy TSO (seed {seed})"
        );
        if solve_sc_backtracking(&cap.trace, &KernelConfig::default()).is_violating() {
            sc_violations += 1;
        }
    }
    assert!(
        sc_violations > 0,
        "store buffers should violate SC on some runs"
    );
}

#[test]
fn vsc_conflict_merge_respects_hardware_write_order() {
    let program = ping_pong(10);
    let cap = Machine::run(
        &program,
        MachineConfig {
            seed: 5,
            ..Default::default()
        },
    );
    let ExecutionVerdict::Coherent(schedules) = verify_execution(&cap.trace) else {
        panic!("ping-pong must be coherent");
    };
    match merge_coherent_schedules(&cap.trace, &schedules) {
        MergeOutcome::Merged(s) => check_sc_schedule(&cap.trace, &s).unwrap(),
        MergeOutcome::Cyclic { .. } => {
            // The particular witnesses may not merge (§6.3); the exact
            // solver must still find SC for the SC-mode machine.
            assert!(solve_sc_backtracking(&cap.trace, &KernelConfig::default()).is_consistent());
        }
    }
}

#[test]
fn vscc_misleading_merge_exercises_exact_fallback() {
    let (trace, adversarial) = vermem::consistency::vscc::misleading_merge_example();
    // Feed the adversarial coherent schedules to the merge: cyclic.
    assert!(matches!(
        merge_coherent_schedules(&trace, &adversarial),
        MergeOutcome::Cyclic { .. }
    ));
    // The pipeline (which picks its own witnesses) must still answer SC
    // correctly, whichever stage settles it.
    let report = verify_vscc(&trace);
    assert!(report.verdict.is_consistent());
    assert!(matches!(
        report.settled_by,
        SettledBy::FastMerge | SettledBy::ExactFallback
    ));
}
