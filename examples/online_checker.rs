//! Online hardware-style verification: the checker rides along with the
//! machine's event stream and flags coherence violations *as they happen*,
//! with detection latency measured in events — the practical payoff of the
//! paper's §5.2 result that verification is polynomial given the write
//! order.
//!
//! ```sh
//! cargo run --release --example online_checker
//! ```

use vermem::coherence::OnlineVerifier;
use vermem::sim::{shared_counter, FaultKind, FaultPlan, Machine, MachineConfig};

fn main() {
    // Healthy run first: the checker stays clean through the whole stream.
    let healthy = Machine::run(&shared_counter(4, 12), MachineConfig::default());
    let mut v = OnlineVerifier::new();
    for &(proc, op) in &healthy.event_log {
        assert_eq!(v.observe(proc, op), 0);
    }
    println!(
        "healthy counter run: {} events observed, 0 violations",
        v.events()
    );
    assert!(v.finish().is_empty());

    // Now a faulty machine: CPU 1 drops an invalidation mid-run.
    for seed in 0..60 {
        let cap = Machine::run(
            &shared_counter(4, 12),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::DropInvalidation { victim_cpu: 1 },
                    at_step: 10,
                }],
                ..Default::default()
            },
        );
        let mut v = OnlineVerifier::new();
        let mut hit = None;
        for (i, &(proc, op)) in cap.event_log.iter().enumerate() {
            if v.observe(proc, op) > 0 {
                hit = Some((i, op));
                break;
            }
        }
        if let Some((i, op)) = hit {
            let violation = &v.violations()[0];
            println!("\nfaulty run (seed {seed}):");
            println!(
                "  violation caught online at event {i} of {}: {:?} by {:?}",
                cap.event_log.len(),
                op,
                violation.proc
            );
            println!(
                "  cause: {:?}; offending op issued at event {}, detected at {} \
                 (latency {} events)",
                violation.cause,
                violation.issued_at,
                violation.detected_at,
                violation.detected_at - violation.issued_at
            );
            return;
        }
    }
    println!("no seed exposed the fault mid-stream (all masked)");
}
