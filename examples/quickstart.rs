//! Quickstart: build execution traces and verify coherence and sequential
//! consistency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vermem::coherence::{self, Verdict};
use vermem::consistency::{self, MemoryModel};
use vermem::trace::{Addr, Op, TraceBuilder};

fn main() {
    // --- 1. A coherent single-location execution -------------------------
    // P0: W(1) R(2)   P1: W(2)
    let trace = TraceBuilder::new()
        .proc([Op::w(1u64), Op::r(2u64)])
        .proc([Op::w(2u64)])
        .build();

    println!("trace:\n{}", vermem::trace::fmt::format_trace(&trace));
    match coherence::verify(&trace, Addr::ZERO) {
        Verdict::Coherent(schedule) => {
            println!("coherent; witness schedule: {schedule:?}\n");
        }
        other => println!("unexpected: {other:?}\n"),
    }

    // --- 2. An incoherent one: the classic read-value regression ---------
    // P0: W(1) W(2)   P1: R(2) R(1)   — P1 sees the location go backwards.
    let corr = TraceBuilder::new()
        .proc([Op::w(1u64), Op::w(2u64)])
        .proc([Op::r(2u64), Op::r(1u64)])
        .build();
    match coherence::verify(&corr, Addr::ZERO) {
        Verdict::Incoherent(violation) => println!("detected: {violation}\n"),
        other => println!("unexpected: {other:?}\n"),
    }

    // --- 3. Coherent-but-not-SC: store buffering across two locations ----
    let sb = TraceBuilder::new()
        .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
        .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
        .build();
    let coherent = coherence::verify_execution(&sb).is_coherent();
    println!("store-buffering outcome: coherent per address = {coherent}");
    for model in MemoryModel::ALL {
        let ok = consistency::verify_model(&sb, model).is_consistent();
        println!("  allowed under {model:>9}: {ok}");
    }

    // --- 4. The paper's worked example (Figure 4.2) ----------------------
    let red = vermem::reductions::example_fig_4_2();
    let verdict = coherence::verify(&red.trace, Addr::ZERO);
    let schedule = verdict.schedule().expect("Q = u is satisfiable");
    let model = red.extract_assignment(schedule);
    println!(
        "\nFigure 4.2: coherent={} with extracted assignment u={}",
        verdict.is_coherent(),
        model.value(vermem::sat::Var(0)).unwrap()
    );
}
