//! Violation explanation: shrink a large faulty execution down to the
//! handful of operations that actually conflict (a 1-minimal incoherent
//! core), the way a protocol engineer would want a failing trace reported.
//!
//! ```sh
//! cargo run --release --example minimal_core
//! ```

use vermem::coherence::{minimize_incoherent_core, verify_execution, ExplainConfig};
use vermem::sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};
use vermem::trace::Addr;

fn main() {
    // Run a random workload with a corrupted cache fill: some read returns
    // a value nothing ever wrote.
    let mut shown = false;
    for seed in 0..50 {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 30,
            addrs: 1,
            write_fraction: 0.45,
            rmw_fraction: 0.0,
            seed,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::CorruptFill {
                        cpu: 2,
                        xor: 0xBAD0,
                    },
                    at_step: 10,
                }],
                ..Default::default()
            },
        );
        if verify_execution(&cap.trace).is_coherent() {
            continue; // this seed's fault was masked; try another
        }

        println!(
            "faulty run (seed {seed}): {} operations, final value = {:?}",
            cap.trace.num_ops(),
            cap.final_memory.get(&Addr(0)).map(|v| v.0)
        );

        let core = minimize_incoherent_core(&cap.trace, Addr(0), &ExplainConfig::default())
            .expect("run is incoherent");
        println!(
            "minimal incoherent core: {} of {} operations —",
            core.len(),
            cap.trace.num_ops()
        );
        for &r in &core.kept {
            println!("  {:?}  {}", r, cap.trace.op(r).expect("kept"));
        }
        println!("cause: {}", core.violation);
        shown = true;
        break;
    }
    assert!(shown, "no seed produced a detectable violation");
}
