//! Run the built-in litmus suite against every memory model and print the
//! allowed/forbidden matrix, cross-checked against the expectations from
//! the literature.
//!
//! ```sh
//! cargo run --release --example litmus_models
//! ```

use vermem::consistency::litmus::all_litmus_tests;
use vermem::consistency::{solve_model_sat, MemoryModel};

fn main() {
    let tests = all_litmus_tests();
    println!(
        "{:<10} {:>4} {:>4} {:>4} {:>10}   description",
        "test", "SC", "TSO", "PSO", "Coherence"
    );
    println!("{}", "-".repeat(86));
    let mut mismatches = 0;
    for test in &tests {
        let mut cells = Vec::new();
        for model in MemoryModel::ALL {
            let got = solve_model_sat(&test.trace, model).is_consistent();
            let expected = test.expected[&model];
            if got != expected {
                mismatches += 1;
            }
            cells.push(match (got, got == expected) {
                (true, true) => "yes".to_string(),
                (false, true) => "no".to_string(),
                (g, false) => format!("{}!", if g { "yes" } else { "no" }),
            });
        }
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>10}   {}",
            test.name, cells[0], cells[1], cells[2], cells[3], test.description
        );
    }
    println!("{}", "-".repeat(86));
    if mismatches == 0 {
        println!("all outcomes match the litmus literature ✓");
    } else {
        println!("{mismatches} MISMATCHES — checker disagreement!");
        std::process::exit(1);
    }

    // Bonus: show the §6.3 VSCC pipeline on the store-buffering outcome.
    let sb = &tests
        .iter()
        .find(|t| t.name == "SB")
        .expect("SB present")
        .trace;
    let report = vermem::consistency::verify_vscc(sb);
    println!(
        "\nVSCC pipeline on SB: coherent promise = {}, settled by {:?}, SC = {}",
        report.coherence.is_ok(),
        report.settled_by,
        report.verdict.is_consistent()
    );
}
