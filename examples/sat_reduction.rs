//! The reduction round trip: SAT → VMC (Figure 4.1) and VMC → SAT.
//!
//! Encodes a pigeonhole-style formula as a coherence-verification instance,
//! decides it both by exact search on the trace and by the CDCL solver on
//! the original formula, extracts the satisfying assignment back out of the
//! coherent schedule, and shows the reverse direction (solving a hard VMC
//! instance through its CNF encoding).
//!
//! ```sh
//! cargo run --release --example sat_reduction
//! ```

use vermem::coherence::{encode_vmc, solve_backtracking, SearchConfig, Verdict};
use vermem::reductions::reduce_sat_to_vmc;
use vermem::sat::{solve_cdcl, CdclSolver, Cnf, Lit, SatResult};
use vermem::trace::Addr;

fn formula(clauses: &[&[i64]]) -> Cnf {
    let mut f = Cnf::new();
    for c in clauses {
        f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
    }
    f
}

fn main() {
    // (x1 ∨ x2 ∨ x3)(¬x1 ∨ ¬x2)(¬x2 ∨ ¬x3)(¬x1 ∨ ¬x3)(x2 ∨ x3)
    let sat_formula = formula(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
    // The same with (x1) forced: unsatisfiable.
    let unsat_formula = formula(&[
        &[1, 2, 3],
        &[-1, -2],
        &[-2, -3],
        &[-1, -3],
        &[2, 3],
        &[1],
        &[-2],
        &[-3],
    ]);

    for (name, f) in [
        ("satisfiable", &sat_formula),
        ("unsatisfiable", &unsat_formula),
    ] {
        println!("=== {name} formula ===");
        let direct = solve_cdcl(f);
        println!("CDCL on the formula:      {}", verdict_str(direct.is_sat()));

        let red = reduce_sat_to_vmc(f);
        println!(
            "Figure 4.1 instance:      {} histories, {} operations",
            red.trace.num_procs(),
            red.trace.num_ops()
        );
        let vmc = solve_backtracking(&red.trace, Addr::ZERO, &SearchConfig::default());
        println!(
            "exact VMC on the trace:   {}",
            verdict_str(vmc.is_coherent())
        );

        if let Verdict::Coherent(schedule) = &vmc {
            let model = red.extract_assignment(schedule);
            let values: Vec<String> = (0..f.num_vars())
                .map(|i| {
                    format!(
                        "x{}={}",
                        i + 1,
                        u8::from(model.value(vermem::sat::Var(i)).unwrap())
                    )
                })
                .collect();
            println!("assignment from schedule: {}", values.join(" "));
            assert_eq!(
                f.eval(&model),
                Some(true),
                "extracted assignment must satisfy"
            );
        }

        // The reverse direction: VMC → SAT. Encode the constructed trace's
        // coherence question as CNF and solve it with CDCL.
        let enc = encode_vmc(&red.trace, Addr::ZERO);
        let mut solver = CdclSolver::new(enc.cnf());
        let via_sat = matches!(solver.solve(), SatResult::Sat(_));
        println!(
            "VMC→SAT→CDCL:             {} ({} vars, {} clauses, {} conflicts)\n",
            verdict_str(via_sat),
            enc.cnf().num_vars(),
            enc.cnf().num_clauses(),
            solver.stats().conflicts
        );
        assert_eq!(via_sat, direct.is_sat());
    }
}

fn verdict_str(positive: bool) -> &'static str {
    if positive {
        "SAT / coherent"
    } else {
        "UNSAT / incoherent"
    }
}
