//! Dynamic verification of a (possibly faulty) memory system — the paper's
//! §1 motivation, end to end: run workloads on the MESI multiprocessor,
//! capture traces, verify coherence; then inject protocol faults and
//! measure how often each fault class is caught.
//!
//! ```sh
//! cargo run --release --example dynamic_verification
//! ```

use vermem::coherence::verify_execution;
use vermem::sim::{
    random_program, shared_counter, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig,
};

const RUNS: u64 = 50;

fn detection_rate(kind: FaultKind, counter_workload: bool) -> (usize, usize) {
    let mut detected = 0;
    for seed in 0..RUNS {
        let program = if counter_workload {
            shared_counter(4, 10)
        } else {
            random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 40,
                addrs: 3,
                write_fraction: 0.45,
                rmw_fraction: 0.0,
                seed,
            })
        };
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed,
                faults: vec![FaultPlan { kind, at_step: 12 }],
                ..Default::default()
            },
        );
        if !verify_execution(&cap.trace).is_coherent() {
            detected += 1;
        }
    }
    (detected, RUNS as usize)
}

fn main() {
    // Baseline: healthy machine, no false positives.
    let mut false_positives = 0;
    for seed in 0..RUNS {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 40,
            addrs: 3,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        if !verify_execution(&cap.trace).is_coherent() {
            false_positives += 1;
        }
        if seed == 0 {
            println!(
                "sample run: {} ops, {} hits, {} misses, {} invalidations, {} writebacks",
                cap.trace.num_ops(),
                cap.stats.hits,
                cap.stats.misses,
                cap.stats.invalidations,
                cap.stats.writebacks
            );
        }
    }
    println!("healthy runs flagged: {false_positives}/{RUNS} (must be 0)\n");

    println!("fault class                         workload   detected");
    println!("--------------------------------------------------------");
    let cases: [(&str, FaultKind, bool); 4] = [
        (
            "corrupt fill (bit flips on fill)",
            FaultKind::CorruptFill {
                cpu: 1,
                xor: 0xBEEF_0000,
            },
            false,
        ),
        (
            "dropped invalidation",
            FaultKind::DropInvalidation { victim_cpu: 2 },
            true,
        ),
        (
            "lost write (dropped store)",
            FaultKind::LostWrite { cpu: 0 },
            false,
        ),
        (
            "stale fill (missed owner supply)",
            FaultKind::StaleFill { cpu: 1 },
            true,
        ),
    ];
    for (name, kind, counter) in cases {
        let (hit, total) = detection_rate(kind, counter);
        let wl = if counter { "counter" } else { "random" };
        println!("{name:<36}{wl:<11}{hit}/{total}");
    }

    // The directory-based machine goes through the same pipeline.
    let mut dir_false_pos = 0;
    for seed in 0..RUNS {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 40,
            addrs: 3,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed,
        });
        let cap = vermem::sim::DirectoryMachine::run(
            &program,
            vermem::sim::DirectoryConfig {
                seed,
                ..Default::default()
            },
        );
        if !verify_execution(&cap.trace).is_coherent() {
            dir_false_pos += 1;
        }
    }
    println!("\ndirectory-MSI machine healthy runs flagged: {dir_false_pos}/{RUNS} (must be 0)");

    println!(
        "\nNote: detection below 100% is inherent, not a verifier gap — a fault \
         that leaves the trace schedulable produced no observable coherence \
         violation (the paper's point: violations are subtle, and exact \
         verification is NP-complete in general)."
    );
}
