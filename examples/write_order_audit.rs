//! §5.2 in practice: an augmented memory system that reports its committed
//! write order makes coherence verification polynomial.
//!
//! Runs large workloads on the simulator, verifies each address's trace
//! through the O(n²) write-order algorithm, and compares wall time against
//! the exact (worst-case exponential) solver on the same traces.
//!
//! ```sh
//! cargo run --release --example write_order_audit
//! ```

use std::time::Instant;
use vermem::coherence::{solve_backtracking, solve_with_write_order, SearchConfig};
use vermem::sim::{random_program, Machine, MachineConfig, WorkloadConfig};

fn main() {
    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "ops", "addresses", "write-order (µs)", "exact (µs)"
    );
    for &instrs in &[50usize, 100, 200, 400, 800] {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: instrs / 4,
            addrs: 2,
            write_fraction: 0.5,
            rmw_fraction: 0.0,
            seed: instrs as u64,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed: 7,
                ..Default::default()
            },
        );

        let t0 = Instant::now();
        for (addr, order) in &cap.write_order {
            let v = solve_with_write_order(&cap.trace, *addr, order);
            assert!(v.is_coherent(), "healthy run must verify");
        }
        let fast = t0.elapsed();

        let t1 = Instant::now();
        for addr in cap.trace.addresses() {
            let v = solve_backtracking(&cap.trace, addr, &SearchConfig::default());
            assert!(v.is_coherent());
        }
        let exact = t1.elapsed();

        println!(
            "{:>8} {:>12} {:>16.1} {:>16.1}",
            cap.trace.num_ops(),
            cap.trace.addresses().len(),
            fast.as_secs_f64() * 1e6,
            exact.as_secs_f64() * 1e6
        );
    }

    println!(
        "\nThe write-order path scales as O(n²) regardless of workload; the exact\n\
         solver is fast on these benign traces but has no polynomial guarantee\n\
         (verifying coherence without the write order is NP-complete, Thm 4.2)."
    );
}
